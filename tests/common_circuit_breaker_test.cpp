// CircuitBreaker state-machine tests, driven entirely through the
// injectable clock: closed → open on the failure ratio, fast-fail while
// open, half-open probes after the cooldown, re-open on a probe failure,
// close after all probes succeed.
#include "common/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"

namespace xsearch {
namespace {

/// Breaker over a hand-stepped clock: tests advance `now` instead of
/// sleeping out cooldowns.
struct FakeClockBreaker {
  Nanos now = 0;
  CircuitBreaker breaker;

  explicit FakeClockBreaker(CircuitBreaker::Options options = small_options())
      : breaker(with_clock(std::move(options), now)) {}

  static CircuitBreaker::Options small_options() {
    CircuitBreaker::Options options;
    options.window = 8;
    options.min_samples = 4;
    options.failure_ratio = 0.5;
    options.open_cooldown = 100 * kMilli;
    options.half_open_probes = 2;
    return options;
  }

 private:
  static CircuitBreaker::Options with_clock(CircuitBreaker::Options options,
                                            Nanos& clock) {
    options.now = [&clock] { return clock; };
    return options;
  }
};

TEST(CircuitBreaker, StaysClosedBelowMinSamples) {
  FakeClockBreaker fake;
  // min_samples = 4: three straight failures may not trip an idle breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fake.breaker.allow());
    fake.breaker.record_failure();
  }
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(fake.breaker.allow());
}

TEST(CircuitBreaker, TripsOpenAtFailureRatioAndFastFails) {
  FakeClockBreaker fake;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fake.breaker.allow());
    fake.breaker.record_failure();
  }
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kOpen);
  // Open: every call is rejected without touching the dependency.
  EXPECT_FALSE(fake.breaker.allow());
  EXPECT_FALSE(fake.breaker.allow());
  const auto stats = fake.breaker.stats();
  EXPECT_EQ(stats.trips, 1u);
  EXPECT_EQ(stats.rejected, 2u);
}

TEST(CircuitBreaker, SuccessesKeepItClosed) {
  FakeClockBreaker fake;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fake.breaker.allow());
    // One failure in four stays under the 50% trip ratio at every prefix
    // and across the full rolling window — must never trip.
    if (i % 4 == 0) {
      fake.breaker.record_failure();
    } else {
      fake.breaker.record_success();
    }
  }
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(fake.breaker.stats().trips, 0u);
}

TEST(CircuitBreaker, HalfOpenProbesCloseAfterCooldown) {
  FakeClockBreaker fake;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fake.breaker.allow());
    fake.breaker.record_failure();
  }
  ASSERT_EQ(fake.breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(fake.breaker.allow());

  // Cooldown elapses on the fake clock: the breaker admits exactly
  // `half_open_probes` trial calls and rejects the rest.
  fake.now += FakeClockBreaker::small_options().open_cooldown;
  EXPECT_TRUE(fake.breaker.allow());
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(fake.breaker.allow());
  EXPECT_FALSE(fake.breaker.allow());  // probe slots exhausted

  fake.breaker.record_success();
  fake.breaker.record_success();
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kClosed);
  // Closed with a cleared window: one new failure cannot re-trip.
  EXPECT_TRUE(fake.breaker.allow());
  fake.breaker.record_failure();
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  FakeClockBreaker fake;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fake.breaker.allow());
    fake.breaker.record_failure();
  }
  fake.now += FakeClockBreaker::small_options().open_cooldown;
  ASSERT_TRUE(fake.breaker.allow());  // half-open probe
  fake.breaker.record_failure();
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(fake.breaker.stats().trips, 2u);
  // The cooldown restarted at the re-open: still rejecting...
  EXPECT_FALSE(fake.breaker.allow());
  // ...until it elapses again.
  fake.now += FakeClockBreaker::small_options().open_cooldown;
  EXPECT_TRUE(fake.breaker.allow());
  fake.breaker.record_success();
  fake.breaker.record_success();
  EXPECT_EQ(fake.breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_STREQ(CircuitBreaker::state_name(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreaker::state_name(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreaker::state_name(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace xsearch
