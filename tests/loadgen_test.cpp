#include "loadgen/loadgen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "netsim/netsim.hpp"

namespace xsearch::loadgen {
namespace {

TEST(LoadGen, CompletesAllRequestsUnderLowLoad) {
  std::atomic<int> handled{0};
  LoadConfig config;
  config.target_rps = 500;
  config.duration = 200 * kMilli;
  config.workers = 2;
  const auto report = run_open_loop([&handled] { ++handled; }, config);
  EXPECT_EQ(report.completed, report.issued);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(handled.load(), static_cast<int>(report.completed));
  EXPECT_NEAR(report.achieved_rps, 500, 100);
}

TEST(LoadGen, LatencyLowWhenUnderCapacity) {
  LoadConfig config;
  config.target_rps = 200;
  config.duration = 200 * kMilli;
  config.workers = 2;
  const auto report =
      run_open_loop([] { netsim::busy_wait(100 * kMicro); }, config);
  // Service time 0.1 ms at 200 rps on 2 workers: far from saturation.
  EXPECT_LT(report.p50_ms(), 5.0);
}

TEST(LoadGen, LatencyExplodesBeyondCapacity) {
  LoadConfig config;
  config.duration = 250 * kMilli;
  config.workers = 2;
  // Capacity = 2 workers / 1 ms = 2000 rps.
  config.target_rps = 1000;
  const auto under = run_open_loop([] { netsim::busy_wait(1 * kMilli); }, config);
  config.target_rps = 6000;
  const auto over = run_open_loop([] { netsim::busy_wait(1 * kMilli); }, config);
  EXPECT_GT(over.p50_ms(), 4 * under.p50_ms());
}

TEST(LoadGen, ThroughputCapsAtCapacity) {
  LoadConfig config;
  config.duration = 250 * kMilli;
  config.workers = 2;
  config.target_rps = 8000;  // far beyond 2 workers / 1ms = 2000 rps
  const auto report = run_open_loop([] { netsim::busy_wait(1 * kMilli); }, config);
  // Nominal capacity is workers / 1 ms, but busy-wait workers cannot exceed
  // the machine's core count (minus the spinning dispatcher, when possible).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double effective_workers =
      std::min<double>(config.workers, std::max(1u, hw - (hw > 1 ? 1 : 0)));
  const double capacity_rps = effective_workers * 1000.0;
  EXPECT_LT(report.achieved_rps, 1.5 * capacity_rps);
  EXPECT_GT(report.achieved_rps, 0.6 * capacity_rps);
}

TEST(LoadGen, ZeroRateProducesNothing) {
  LoadConfig config;
  config.target_rps = 0;
  const auto report = run_open_loop([] {}, config);
  EXPECT_EQ(report.issued, 0u);
}

TEST(LoadGen, ReportPercentilesOrdered) {
  LoadConfig config;
  config.target_rps = 1000;
  config.duration = 200 * kMilli;
  const auto report = run_open_loop([] { netsim::busy_wait(50 * kMicro); }, config);
  EXPECT_LE(report.p50_ms(), report.p99_ms());
}

TEST(NetSim, LinkModelSamplesAroundMedian) {
  netsim::LinkModel link{.median_ms = 100.0, .sigma = 0.2, .min_ms = 1.0};
  Rng rng(1);
  std::vector<Nanos> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(link.sample(rng));
  std::sort(samples.begin(), samples.end());
  const double median_ms =
      static_cast<double>(samples[samples.size() / 2]) / static_cast<double>(kMilli);
  EXPECT_NEAR(median_ms, 100.0, 5.0);
}

TEST(NetSim, LinkModelRespectsFloor) {
  netsim::LinkModel link{.median_ms = 1.0, .sigma = 2.0, .min_ms = 0.5};
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(link.sample(rng), static_cast<Nanos>(0.5 * static_cast<double>(kMilli)));
  }
}

TEST(NetSim, BusyWaitWaits) {
  const Nanos start = wall_now();
  netsim::busy_wait(2 * kMilli);
  EXPECT_GE(wall_now() - start, 2 * kMilli);
}

TEST(NetSim, BusyWaitZeroReturnsImmediately) {
  const Nanos start = wall_now();
  netsim::busy_wait(0);
  netsim::busy_wait(-5);
  EXPECT_LT(wall_now() - start, 1 * kMilli);
}

TEST(NetSim, CalibratedCostsOrdered) {
  EXPECT_LT(netsim::service_costs::xsearch_proxy().cost_per_request,
            netsim::service_costs::peas_chain().cost_per_request);
  EXPECT_LT(netsim::service_costs::peas_chain().cost_per_request,
            netsim::service_costs::tor_circuit().cost_per_request);
}

}  // namespace
}  // namespace xsearch::loadgen
