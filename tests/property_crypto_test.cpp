// Property-based crypto tests: invariants swept over message sizes and
// seeds with parameterized gtest.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/random.hpp"
#include "crypto/secure_channel.hpp"
#include "crypto/sha256.hpp"
#include "crypto/x25519.hpp"

namespace xsearch::crypto {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// ---- AEAD properties over (size, seed) ---------------------------------------

class AeadProperty : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {
 protected:
  std::size_t size() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const { return static_cast<std::uint64_t>(std::get<1>(GetParam())); }
};

TEST_P(AeadProperty, SealOpenIsIdentity) {
  Rng rng(seed());
  AeadKey::Raw raw{};
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next());
  const AeadKey key = AeadKey::absorb(raw);
  const Bytes plaintext = random_bytes(rng, size());
  const Bytes aad = random_bytes(rng, rng.uniform(64));
  const AeadNonce nonce = make_nonce(static_cast<std::uint32_t>(rng.next()), rng.next());

  const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
  EXPECT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST_P(AeadProperty, AnySingleBitFlipIsRejected) {
  Rng rng(seed() ^ 0xf11b);
  AeadKey::Raw raw{};
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next());
  const AeadKey key = AeadKey::absorb(raw);
  const Bytes plaintext = random_bytes(rng, size());
  const AeadNonce nonce = make_nonce(1, 1);
  const Bytes sealed = aead_seal(key, nonce, {}, plaintext);

  // Flip a handful of random bit positions; every one must break auth.
  for (int trial = 0; trial < 16; ++trial) {
    Bytes corrupted = sealed;
    const std::size_t byte = rng.uniform(corrupted.size());
    const int bit = static_cast<int>(rng.uniform(8));
    corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
    EXPECT_FALSE(aead_open(key, nonce, {}, corrupted).has_value())
        << "byte " << byte << " bit " << bit;
  }
}

TEST_P(AeadProperty, CiphertextLooksUncorrelated) {
  // Weak PRF sanity: byte-histogram of the ciphertext is near-uniform.
  Rng rng(seed() ^ 0xc0de);
  if (size() < 1024) GTEST_SKIP() << "needs enough material";
  AeadKey::Raw raw{};
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next());
  const AeadKey key = AeadKey::absorb(raw);
  const Bytes plaintext(size(), 0x00);  // worst case: all zeros
  const Bytes sealed = aead_seal(key, make_nonce(2, 2), {}, plaintext);
  int histogram[256] = {};
  for (const std::uint8_t b : sealed) ++histogram[b];
  const double expected = static_cast<double>(sealed.size()) / 256.0;
  for (int v = 0; v < 256; ++v) {
    EXPECT_LT(std::abs(histogram[v] - expected), expected * 6 + 16) << "byte " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, AeadProperty,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 15, 16, 17, 63, 64, 255,
                                                      1024, 65536),
                       ::testing::Values(1, 2, 3)));

// ---- SHA-256 incremental == one-shot over chunkings ------------------------------

class Sha256Chunking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Chunking, IncrementalMatchesOneShot) {
  Rng rng(GetParam());
  const Bytes data = random_bytes(rng, 4096 + GetParam() * 17);
  Sha256 ctx;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t chunk = std::min<std::size_t>(1 + rng.uniform(200),
                                                    data.size() - offset);
    ctx.update(ByteSpan(data.data() + offset, chunk));
    offset += chunk;
  }
  EXPECT_EQ(ctx.finalize(), Sha256::hash(data));
}

INSTANTIATE_TEST_SUITE_P(Chunkings, Sha256Chunking, ::testing::Range<std::size_t>(1, 9));

// ---- X25519 algebra over seeds ------------------------------------------------------

class X25519Property : public ::testing::TestWithParam<int> {};

TEST_P(X25519Property, DiffieHellmanCommutes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  X25519Secret::Raw sa{}, sb{};
  for (auto& b : sa) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : sb) b = static_cast<std::uint8_t>(rng.next());
  const auto a = x25519_keypair_from_seed(X25519Secret::absorb(sa));
  const auto b = x25519_keypair_from_seed(X25519Secret::absorb(sb));
  EXPECT_EQ(x25519(a.private_key, b.public_key), x25519(b.private_key, a.public_key));
}

TEST_P(X25519Property, SharedSecretNotTrivial) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) ^ 0x5ec);
  X25519Secret::Raw sa{}, sb{};
  for (auto& b : sa) b = static_cast<std::uint8_t>(rng.next());
  for (auto& b : sb) b = static_cast<std::uint8_t>(rng.next());
  const auto a = x25519_keypair_from_seed(X25519Secret::absorb(sa));
  const auto b = x25519_keypair_from_seed(X25519Secret::absorb(sb));
  const auto shared = x25519(a.private_key, b.public_key);
  const X25519Key zero{};
  EXPECT_NE(shared, zero);
  EXPECT_NE(shared, a.public_key);
  EXPECT_NE(shared, b.public_key);
}

INSTANTIATE_TEST_SUITE_P(Seeds, X25519Property, ::testing::Range(1, 11));

// ---- secure channel under message sequences ---------------------------------------

class ChannelSequence : public ::testing::TestWithParam<int> {};

TEST_P(ChannelSequence, InterleavedBidirectionalTraffic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  ChaChaKey::Raw seed{};
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next());
  SecureRandom srng(ChaChaKey::absorb(seed));
  const auto server_static = x25519_keypair_from_seed(srng.key());
  const auto client_eph = x25519_keypair_from_seed(srng.key());
  const auto server_eph = x25519_keypair_from_seed(srng.key());
  auto client = SecureChannel::initiator(client_eph, server_static.public_key,
                                         server_eph.public_key);
  auto server =
      SecureChannel::responder(server_static, server_eph, client_eph.public_key);

  for (int i = 0; i < 60; ++i) {
    const Bytes msg = random_bytes(rng, rng.uniform(300));
    if (rng.bernoulli(0.5)) {
      const auto opened = server.open(client.seal(msg));
      ASSERT_TRUE(opened.is_ok());
      EXPECT_EQ(opened.value(), msg);
    } else {
      const auto opened = client.open(server.seal(msg));
      ASSERT_TRUE(opened.is_ok());
      EXPECT_EQ(opened.value(), msg);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSequence, ::testing::Range(1, 7));

// ---- HKDF output independence -----------------------------------------------------

class HkdfProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HkdfProperty, DistinctInfoDistinctOutput) {
  const Bytes ikm(32, static_cast<std::uint8_t>(GetParam()));
  const SecretBytes a = hkdf({}, ikm, to_bytes("context-a"), GetParam() + 1);
  const SecretBytes b = hkdf({}, ikm, to_bytes("context-b"), GetParam() + 1);
  if (a.size() > 0) {
    EXPECT_FALSE(constant_time_equal(a, b.expose(SecretSink::kTestVector)));
  }
  EXPECT_EQ(a.size(), GetParam() + 1);
}

TEST_P(HkdfProperty, PrefixConsistency) {
  // hkdf(n) is a prefix of hkdf(n + 32) for the same inputs.
  const Bytes ikm(32, static_cast<std::uint8_t>(GetParam() * 3 + 1));
  const std::size_t n = GetParam() + 1;
  const SecretBytes small = hkdf({}, ikm, to_bytes("ctx"), n);
  const SecretBytes large = hkdf({}, ikm, to_bytes("ctx"), n + 32);
  const auto small_view = small.expose(SecretSink::kTestVector);
  const auto large_view = large.expose(SecretSink::kTestVector);
  EXPECT_TRUE(std::equal(small_view.begin(), small_view.end(), large_view.begin()));
}

INSTANTIATE_TEST_SUITE_P(Lengths, HkdfProperty,
                         ::testing::Values<std::size_t>(0, 15, 31, 32, 33, 63, 100));

}  // namespace
}  // namespace xsearch::crypto
