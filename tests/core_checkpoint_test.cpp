#include "xsearch/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"

namespace xsearch::core {
namespace {

sgx::EnclaveRuntime make_enclave(std::string code = "xsearch-proxy-v1") {
  return sgx::EnclaveRuntime({.code_identity = to_bytes(code)});
}

TEST(Checkpoint, SealRestoreRoundTrip) {
  auto enclave = make_enclave();
  QueryHistory original(100);
  for (int i = 0; i < 50; ++i) original.add("query " + std::to_string(i));

  const Bytes sealed = seal_history(enclave, original);
  QueryHistory restored(100);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  EXPECT_EQ(restored.size(), 50u);
  EXPECT_EQ(restored.snapshot(), original.snapshot());
}

TEST(Checkpoint, PreservesSlidingWindowOrder) {
  auto enclave = make_enclave();
  QueryHistory original(5);
  for (int i = 0; i < 12; ++i) original.add("q" + std::to_string(i));
  // Window holds q7..q11, oldest first.
  EXPECT_EQ(original.snapshot(),
            (std::vector<std::string>{"q7", "q8", "q9", "q10", "q11"}));

  const Bytes sealed = seal_history(enclave, original);
  QueryHistory restored(5);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  EXPECT_EQ(restored.snapshot(), original.snapshot());
}

TEST(Checkpoint, EmptyHistory) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  const Bytes sealed = seal_history(enclave, original);
  QueryHistory restored(10);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(Checkpoint, RestoreAcrossEnclaveInstances) {
  // Same code identity = same sealing key: a restarted proxy can restore.
  auto first = make_enclave();
  QueryHistory original(10);
  original.add("persisted across restart");
  const Bytes sealed = seal_history(first, original);

  auto restarted = make_enclave();
  QueryHistory restored(10);
  ASSERT_TRUE(restore_history(restarted, sealed, restored).is_ok());
  EXPECT_EQ(restored.snapshot().front(), "persisted across restart");
}

TEST(Checkpoint, DifferentCodeCannotRestore) {
  auto genuine = make_enclave();
  QueryHistory original(10);
  original.add("secret query");
  const Bytes sealed = seal_history(genuine, original);

  auto other = make_enclave("different-code");
  QueryHistory restored(10);
  EXPECT_FALSE(restore_history(other, sealed, restored).is_ok());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(Checkpoint, TamperedBlobRejected) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  original.add("query");
  Bytes sealed = seal_history(enclave, original);
  sealed[sealed.size() / 2] ^= 1;
  QueryHistory restored(10);
  EXPECT_FALSE(restore_history(enclave, sealed, restored).is_ok());
}

TEST(Checkpoint, HostNeverSeesPlaintext) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  const std::string secret = "very-identifiable-medical-query";
  original.add(secret);
  const Bytes sealed = seal_history(enclave, original);
  const std::string blob = to_string(sealed);
  EXPECT_EQ(blob.find(secret), std::string::npos);
}

TEST(Checkpoint, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "xs_checkpoint.bin";
  auto enclave = make_enclave();
  QueryHistory original(20);
  for (int i = 0; i < 20; ++i) original.add("fq " + std::to_string(i));

  ASSERT_TRUE(write_checkpoint_file(path, seal_history(enclave, original)).is_ok());
  const auto loaded = read_checkpoint_file(path);
  ASSERT_TRUE(loaded.is_ok());
  QueryHistory restored(20);
  ASSERT_TRUE(restore_history(enclave, loaded.value(), restored).is_ok());
  EXPECT_EQ(restored.snapshot(), original.snapshot());
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileFails) {
  EXPECT_FALSE(read_checkpoint_file("/nonexistent/checkpoint.bin").is_ok());
}

TEST(Checkpoint, RestoredHistoryFeedsObfuscation) {
  auto enclave = make_enclave();
  QueryHistory original(100);
  for (int i = 0; i < 40; ++i) original.add("warm " + std::to_string(i));
  const Bytes sealed = seal_history(enclave, original);

  QueryHistory restored(100);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  Rng rng(5);
  const auto fakes = restored.sample(3, rng);
  EXPECT_EQ(fakes.size(), 3u);  // no cold start after restore
}

}  // namespace
}  // namespace xsearch::core
