#include "xsearch/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

sgx::EnclaveRuntime make_enclave(std::string code = "xsearch-proxy-v1") {
  return sgx::EnclaveRuntime({.code_identity = to_bytes(code)});
}

TEST(Checkpoint, SealRestoreRoundTrip) {
  auto enclave = make_enclave();
  QueryHistory original(100);
  for (int i = 0; i < 50; ++i) original.add("query " + std::to_string(i));

  const Bytes sealed = seal_history(enclave, original);
  QueryHistory restored(100);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  EXPECT_EQ(restored.size(), 50u);
  EXPECT_EQ(restored.snapshot(), original.snapshot());
}

TEST(Checkpoint, PreservesSlidingWindowOrder) {
  auto enclave = make_enclave();
  QueryHistory original(5);
  for (int i = 0; i < 12; ++i) original.add("q" + std::to_string(i));
  // Window holds q7..q11, oldest first.
  EXPECT_EQ(original.snapshot(),
            (std::vector<std::string>{"q7", "q8", "q9", "q10", "q11"}));

  const Bytes sealed = seal_history(enclave, original);
  QueryHistory restored(5);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  EXPECT_EQ(restored.snapshot(), original.snapshot());
}

TEST(Checkpoint, EmptyHistory) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  const Bytes sealed = seal_history(enclave, original);
  QueryHistory restored(10);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(Checkpoint, RestoreAcrossEnclaveInstances) {
  // Same code identity = same sealing key: a restarted proxy can restore.
  auto first = make_enclave();
  QueryHistory original(10);
  original.add("persisted across restart");
  const Bytes sealed = seal_history(first, original);

  auto restarted = make_enclave();
  QueryHistory restored(10);
  ASSERT_TRUE(restore_history(restarted, sealed, restored).is_ok());
  EXPECT_EQ(restored.snapshot().front(), "persisted across restart");
}

TEST(Checkpoint, DifferentCodeCannotRestore) {
  auto genuine = make_enclave();
  QueryHistory original(10);
  original.add("secret query");
  const Bytes sealed = seal_history(genuine, original);

  auto other = make_enclave("different-code");
  QueryHistory restored(10);
  EXPECT_FALSE(restore_history(other, sealed, restored).is_ok());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(Checkpoint, TamperedBlobRejected) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  original.add("query");
  Bytes sealed = seal_history(enclave, original);
  sealed[sealed.size() / 2] ^= 1;
  QueryHistory restored(10);
  EXPECT_FALSE(restore_history(enclave, sealed, restored).is_ok());
}

TEST(Checkpoint, HostNeverSeesPlaintext) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  const std::string secret = "very-identifiable-medical-query";
  original.add(secret);
  const Bytes sealed = seal_history(enclave, original);
  const std::string blob = to_string(sealed);
  EXPECT_EQ(blob.find(secret), std::string::npos);
}

TEST(Checkpoint, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "xs_checkpoint.bin";
  auto enclave = make_enclave();
  QueryHistory original(20);
  for (int i = 0; i < 20; ++i) original.add("fq " + std::to_string(i));

  ASSERT_TRUE(write_checkpoint_file(path, seal_history(enclave, original)).is_ok());
  const auto loaded = read_checkpoint_file(path);
  ASSERT_TRUE(loaded.is_ok());
  QueryHistory restored(20);
  ASSERT_TRUE(restore_history(enclave, loaded.value(), restored).is_ok());
  EXPECT_EQ(restored.snapshot(), original.snapshot());
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileFails) {
  EXPECT_FALSE(read_checkpoint_file("/nonexistent/checkpoint.bin").is_ok());
}

TEST(Checkpoint, TruncatedFileRejectedCleanly) {
  // Regression: a crash mid-write used to leave a truncated blob at the
  // target path that poisoned the next restore. Writes are now atomic
  // (temp + rename), but a host can still truncate the file; the restore
  // must fail cleanly, not half-replay.
  const auto path =
      std::filesystem::temp_directory_path() / "xs_checkpoint_truncated.bin";
  auto enclave = make_enclave();
  QueryHistory original(50);
  for (int i = 0; i < 30; ++i) original.add("entry " + std::to_string(i));
  ASSERT_TRUE(write_checkpoint_file(path, seal_history(enclave, original)).is_ok());

  // Truncate the persisted blob to half (what an interrupted non-atomic
  // write would have produced).
  const auto full = read_checkpoint_file(path);
  ASSERT_TRUE(full.is_ok());
  Bytes half(full.value().begin(),
             full.value().begin() + static_cast<std::ptrdiff_t>(full.value().size() / 2));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(half.data()),
              static_cast<std::streamsize>(half.size()));
  }

  const auto loaded = read_checkpoint_file(path);
  ASSERT_TRUE(loaded.is_ok());
  QueryHistory restored(50);
  EXPECT_FALSE(restore_history(enclave, loaded.value(), restored).is_ok());
  std::filesystem::remove(path);
}

TEST(Checkpoint, WriteLeavesNoTempFileBehind) {
  const auto dir = std::filesystem::temp_directory_path() / "xs_ckpt_atomic_dir";
  std::filesystem::remove_all(dir);
  const auto path = dir / "history.ckpt";
  auto enclave = make_enclave();
  QueryHistory history(10);
  history.add("q");
  ASSERT_TRUE(write_checkpoint_file(path, seal_history(enclave, history)).is_ok());
  // The directory was created on demand and holds exactly the checkpoint —
  // the temp file was renamed into place, not left beside it.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename(), "history.ckpt");
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, OverCapacityRestoreKeepsNewestEntries) {
  // Regression: restoring a checkpoint wider than the target window used to
  // replay oldest-first, wasting the whole window on entries the replay
  // itself evicted. Only the newest `capacity` entries must land.
  auto enclave = make_enclave();
  QueryHistory original(100);
  for (int i = 0; i < 100; ++i) original.add("q" + std::to_string(i));
  const Bytes sealed = seal_history(enclave, original);

  QueryHistory narrow(10);
  ASSERT_TRUE(restore_history(enclave, sealed, narrow).is_ok());
  EXPECT_EQ(narrow.size(), 10u);
  EXPECT_EQ(narrow.snapshot(),
            (std::vector<std::string>{"q90", "q91", "q92", "q93", "q94", "q95",
                                      "q96", "q97", "q98", "q99"}));
}

TEST(Checkpoint, V2CarriesPerSessionObfuscatorState) {
  auto enclave = make_enclave();
  QueryHistory original(10);
  original.add("warm");
  const SessionObfuscationCounts sealed_sessions = {{11, 7}, {42, 1000}};
  const Bytes sealed = seal_history(enclave, original, sealed_sessions);

  QueryHistory restored(10);
  SessionObfuscationCounts restored_sessions;
  ASSERT_TRUE(
      restore_history(enclave, sealed, restored, &restored_sessions).is_ok());
  EXPECT_EQ(restored_sessions, sealed_sessions);
  EXPECT_EQ(restored.size(), 1u);
}

TEST(Checkpoint, V1BlobStillRestorable) {
  // Hand-build a v1 plaintext (magic, version=1, entries — no session
  // section) and seal it: v2 readers must keep accepting pre-upgrade
  // checkpoints.
  auto enclave = make_enclave();
  Bytes plain;
  wire::put_u32(plain, 0x58534850);  // "XSHP"
  wire::put_u32(plain, 1);
  wire::put_u32(plain, 2);
  wire::put_string(plain, "old one");
  wire::put_string(plain, "old two");
  const Bytes sealed = enclave.seal(plain);

  QueryHistory restored(10);
  SessionObfuscationCounts sessions = {{1, 1}};  // must be cleared
  ASSERT_TRUE(restore_history(enclave, sealed, restored, &sessions).is_ok());
  EXPECT_EQ(restored.snapshot(), (std::vector<std::string>{"old one", "old two"}));
  EXPECT_TRUE(sessions.empty());
}

TEST(Checkpoint, RestoredHistoryFeedsObfuscation) {
  auto enclave = make_enclave();
  QueryHistory original(100);
  for (int i = 0; i < 40; ++i) original.add("warm " + std::to_string(i));
  const Bytes sealed = seal_history(enclave, original);

  QueryHistory restored(100);
  ASSERT_TRUE(restore_history(enclave, sealed, restored).is_ok());
  Rng rng(5);
  const auto fakes = restored.sample(3, rng);
  EXPECT_EQ(fakes.size(), 3u);  // no cold start after restore
}

}  // namespace
}  // namespace xsearch::core
