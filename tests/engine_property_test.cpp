// Property tests of the retrieval substrate: BM25 ranking invariants and
// OR-merge semantics over parameter grids.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "engine/index.hpp"
#include "engine/search_engine.hpp"

namespace xsearch::engine {
namespace {

Document doc(DocId id, std::string title, std::string body) {
  Document d;
  d.id = id;
  d.title = std::move(title);
  d.body = std::move(body);
  d.url = "https://d" + std::to_string(id) + ".example/";
  return d;
}

// ---- BM25 invariants over k1/b parameter grid -----------------------------------

class Bm25Grid : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  Bm25Params params() const {
    return Bm25Params{.k1 = std::get<0>(GetParam()), .b = std::get<1>(GetParam())};
  }
};

TEST_P(Bm25Grid, ExactMatchOutranksPartialMatch) {
  InvertedIndex index(params());
  index.add_document(doc(0, "alpha beta gamma", "alpha beta gamma content"));
  index.add_document(doc(1, "alpha delta", "alpha unrelated content"));
  const auto results = index.search("alpha beta gamma", 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_GT(results[0].score, results[1].score);
}

TEST_P(Bm25Grid, RareTermWeighsMoreThanCommonTerm) {
  InvertedIndex index(params());
  // "common" appears in every document; "rare" in one.
  for (DocId i = 0; i < 20; ++i) {
    index.add_document(doc(i, "common topic " + std::to_string(i),
                           i == 7 ? "rare common words" : "common words"));
  }
  const auto results = index.search("rare", 20);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc, 7u);
  // The rare-term hit scores above any single common-term hit.
  const auto common_results = index.search("common", 20);
  ASSERT_FALSE(common_results.empty());
  EXPECT_GT(results[0].score, common_results[0].score);
}

TEST_P(Bm25Grid, ScoresArePositiveAndSorted) {
  InvertedIndex index(params());
  Rng rng(3);
  const std::vector<std::string> words = {"web", "search", "privacy", "pasta",
                                          "code", "music", "news",   "game"};
  for (DocId i = 0; i < 100; ++i) {
    std::string body;
    for (int w = 0; w < 12; ++w) {
      body += words[rng.uniform(words.size())];
      body += ' ';
    }
    index.add_document(doc(i, words[rng.uniform(words.size())], body));
  }
  const auto results = index.search("web privacy", 50);
  ASSERT_FALSE(results.empty());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GT(results[i].score, 0.0);
    if (i > 0) EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST_P(Bm25Grid, AddingUnrelatedDocumentsKeepsTopResult) {
  InvertedIndex small(params());
  small.add_document(doc(0, "target phrase here", "the target phrase body"));
  small.add_document(doc(1, "noise one", "noise body one"));
  const auto before = small.search("target phrase", 1);
  ASSERT_EQ(before.size(), 1u);

  InvertedIndex large(params());
  large.add_document(doc(0, "target phrase here", "the target phrase body"));
  large.add_document(doc(1, "noise one", "noise body one"));
  for (DocId i = 2; i < 50; ++i) {
    large.add_document(doc(i, "irrelevant stuff", "completely different words"));
  }
  const auto after = large.search("target phrase", 1);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].doc, before[0].doc);
}

INSTANTIATE_TEST_SUITE_P(
    Params, Bm25Grid,
    ::testing::Combine(::testing::Values(0.5, 1.2, 2.0),
                       ::testing::Values(0.0, 0.5, 0.75, 1.0)));

// ---- OR-merge semantics over sub-query counts --------------------------------------

class OrMergeGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrMergeGrid, MergeIsSupersetOfEachSubQueryHead) {
  const std::size_t n_subs = GetParam();
  // One dedicated document per topic.
  std::vector<std::string> sub_queries;
  InvertedIndex index;
  for (std::size_t t = 0; t < n_subs; ++t) {
    const std::string topic = "topic" + std::to_string(t);
    sub_queries.push_back(topic);
    index.add_document(doc(static_cast<DocId>(t), topic + " page",
                           topic + " body " + topic));
  }
  // Each sub-query's top hit is its own topic document; the OR-merge must
  // contain all of them (rank-interleaved).
  std::unordered_set<DocId> expected;
  for (std::size_t t = 0; t < n_subs; ++t) {
    const auto r = index.search(sub_queries[t], 1);
    ASSERT_EQ(r.size(), 1u);
    expected.insert(r[0].doc);
  }
  EXPECT_EQ(expected.size(), n_subs);
}

INSTANTIATE_TEST_SUITE_P(SubQueryCounts, OrMergeGrid,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

}  // namespace
}  // namespace xsearch::engine
