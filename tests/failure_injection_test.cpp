// Failure-injection tests: the proxy must degrade cleanly when the
// untrusted host misbehaves — failing sockets, truncated engine responses,
// garbage data — since Byzantine host behaviour is exactly the threat model
// (§3). Faults are injected by re-registering the host-side ocall handlers.
#include <gtest/gtest.h>

#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : log_([] {
          dataset::SyntheticLogConfig config;
          config.num_users = 20;
          config.total_queries = 1'000;
          config.vocab_size = 600;
          config.num_topics = 8;
          config.words_per_topic = 50;
          return dataset::generate_synthetic_log(config);
        }()),
        corpus_(log_, engine::CorpusConfig{.seed = 9, .num_documents = 500}),
        engine_(corpus_),
        authority_(to_bytes("fault-root")),
        proxy_(&engine_, authority_, make_options()),
        broker_(proxy_, authority_, proxy_.measurement(), 1) {}

  static XSearchProxy::Options make_options() {
    XSearchProxy::Options options;
    options.k = 2;
    options.history_capacity = 1'000;
    return options;
  }

  /// The enclave runtime is only exposed const from the proxy; fault
  /// injection legitimately models the *untrusted host* re-registering its
  /// own ocall handlers, so the const_cast mirrors the host's powers.
  sgx::EnclaveRuntime& host_enclave() {
    return const_cast<sgx::EnclaveRuntime&>(proxy_.enclave());
  }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
  XSearchProxy proxy_;
  ClientBroker broker_;
};

TEST_F(FaultTest, BaselineWorks) {
  ASSERT_TRUE(broker_.search(log_.records()[0].text).is_ok());
}

TEST_F(FaultTest, FailingConnectSurfacesAsProxyError) {
  host_enclave().register_ocall("sock_connect", [](ByteSpan) -> Result<Bytes> {
    return unavailable("connection refused");
  });
  const auto results = broker_.search(log_.records()[1].text);
  EXPECT_FALSE(results.is_ok());
  EXPECT_NE(results.status().message().find("connection refused"), std::string::npos);
}

TEST_F(FaultTest, FailingSendSurfacesAsProxyError) {
  host_enclave().register_ocall("send", [](ByteSpan) -> Result<Bytes> {
    return unavailable("network down");
  });
  EXPECT_FALSE(broker_.search(log_.records()[2].text).is_ok());
}

TEST_F(FaultTest, GarbageRecvRejectedByEnclaveParser) {
  host_enclave().register_ocall("recv", [](ByteSpan) -> Result<Bytes> {
    return Bytes(37, 0x5a);  // not a results serialization
  });
  const auto results = broker_.search(log_.records()[3].text);
  EXPECT_FALSE(results.is_ok());
}

TEST_F(FaultTest, TruncatedRecvRejected) {
  host_enclave().register_ocall("recv", [this](ByteSpan) -> Result<Bytes> {
    std::vector<engine::SearchResult> fake(2);
    fake[0].title = "a";
    fake[1].title = "b";
    Bytes raw = wire::serialize_results(fake);
    raw.resize(raw.size() / 2);  // host truncates mid-message
    return raw;
  });
  EXPECT_FALSE(broker_.search(log_.records()[4].text).is_ok());
}

TEST_F(FaultTest, HostCannotForgeResultsSilently) {
  // A malicious host CAN substitute results (the engine is outside the
  // TCB and unauthenticated in the paper's design) — but only well-formed
  // ones, and they still pass through Algorithm 2 filtering. Verify the
  // substituted off-topic results are filtered out rather than delivered.
  host_enclave().register_ocall("recv", [](ByteSpan) -> Result<Bytes> {
    std::vector<engine::SearchResult> forged(1);
    forged[0].title = "totally unrelated propaganda";
    forged[0].description = "unrelated words entirely";
    forged[0].url = "https://evil.example/";
    return wire::serialize_results(forged);
  });
  // Warm the history so fakes exist and filtering has decoys to compare.
  for (int i = 0; i < 10; ++i) {
    (void)broker_.search(log_.records()[static_cast<std::size_t>(10 + i)].text);
  }
  const auto results = broker_.search(log_.records()[5].text);
  ASSERT_TRUE(results.is_ok());
  // The forged result shares no words with the query: its original-score is
  // 0, tying every fake, so Algorithm 2's tie rule may keep it — but the
  // client-visible record is authenticated end-to-end, so the user at least
  // cannot be given *tampered* (vs substituted) content. Assert well-formed.
  for (const auto& r : results.value()) {
    EXPECT_FALSE(r.title.empty());
  }
}

TEST_F(FaultTest, RecoveryAfterTransientFault) {
  host_enclave().register_ocall("send", [](ByteSpan) -> Result<Bytes> {
    return unavailable("blip");
  });
  EXPECT_FALSE(broker_.search(log_.records()[6].text).is_ok());

  // Host restores connectivity: the same session keeps working because the
  // enclave sends its error through the secure channel (counters stay in
  // sync on both ends).
  XSearchProxy fresh_proxy(&engine_, authority_, make_options());
  ClientBroker fresh_broker(fresh_proxy, authority_, fresh_proxy.measurement(), 2);
  EXPECT_TRUE(fresh_broker.search(log_.records()[7].text).is_ok());
  // And on the original proxy too:
  host_enclave().register_ocall("send", [this](ByteSpan payload) -> Result<Bytes> {
    // Re-implement the normal host handler against the engine.
    std::size_t offset = 0;
    auto sock = wire::get_u64(payload, offset);
    if (!sock) return sock.status();
    auto request = wire::parse_engine_request(payload.subspan(offset));
    if (!request) return request.status();
    (void)engine_.search_or(request.value().sub_queries, request.value().top_k_each);
    return Bytes{};
  });
  // The "send" handler above doesn't park the response in the socket table
  // (host-internal detail), so recv yields an empty buffer -> parse error;
  // what matters is the channel survives transient faults without desync:
  const auto after = broker_.search(log_.records()[8].text);
  EXPECT_FALSE(after.is_ok());
  // Channel still alive: error came back *through* the channel.
  EXPECT_NE(after.status().message().find("proxy error"), std::string::npos);
}

}  // namespace
}  // namespace xsearch::core
