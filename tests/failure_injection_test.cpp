// Failure-injection tests: the proxy must degrade cleanly when the
// untrusted host misbehaves — failing sockets, truncated engine responses,
// garbage data — since Byzantine host behaviour is exactly the threat model
// (§3). Faults are injected by re-registering the host-side ocall handlers.
//
// The FleetFault section lifts the same discipline to the fleet layer, end
// to end over real TCP: a worker is lost mid-session (the Byzantine host
// drops its ocall sockets and stops servicing the enclave), the supervisor
// must detect and respawn it, the arc must re-attest, and the restored
// history depth must equal the checkpointed depth. Run under TSan and ASan
// in CI (labels: net, concurrency).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "test_util.hpp"

#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "net/fleet_supervisor.hpp"
#include "net/proxy_fleet.hpp"
#include "net/proxy_server.hpp"
#include "net/remote_broker.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : log_([] {
          dataset::SyntheticLogConfig config;
          config.num_users = 20;
          config.total_queries = 1'000;
          config.vocab_size = 600;
          config.num_topics = 8;
          config.words_per_topic = 50;
          return dataset::generate_synthetic_log(config);
        }()),
        corpus_(log_, engine::CorpusConfig{.seed = 9, .num_documents = 500}),
        engine_(corpus_),
        authority_(to_bytes("fault-root")),
        proxy_(&engine_, authority_, make_options()),
        broker_(proxy_, authority_, proxy_.measurement(), 1) {}

  static XSearchProxy::Options make_options() {
    XSearchProxy::Options options;
    options.k = 2;
    options.history_capacity = 1'000;
    return options;
  }

  /// Fault injection models the *untrusted host* re-registering its own
  /// ocall handlers, which the proxy exposes first-class (no const_cast —
  /// the boundary lint bans casting away the enclave's constness).
  sgx::EnclaveRuntime& host_enclave() { return proxy_.host_enclave(); }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
  XSearchProxy proxy_;
  ClientBroker broker_;
};

TEST_F(FaultTest, BaselineWorks) {
  ASSERT_TRUE(broker_.search(log_.records()[0].text).is_ok());
}

TEST_F(FaultTest, FailingConnectSurfacesAsProxyError) {
  host_enclave().register_ocall(sgx::OcallId::kSockConnect, [](ByteSpan) -> Result<Bytes> {
    return unavailable("connection refused");
  });
  const auto results = broker_.search(log_.records()[1].text);
  EXPECT_FALSE(results.is_ok());
  EXPECT_NE(results.status().message().find("connection refused"), std::string::npos);
}

TEST_F(FaultTest, FailingSendSurfacesAsProxyError) {
  host_enclave().register_ocall(sgx::OcallId::kSend, [](ByteSpan) -> Result<Bytes> {
    return unavailable("network down");
  });
  EXPECT_FALSE(broker_.search(log_.records()[2].text).is_ok());
}

TEST_F(FaultTest, GarbageRecvRejectedByEnclaveParser) {
  host_enclave().register_ocall(sgx::OcallId::kRecv, [](ByteSpan) -> Result<Bytes> {
    return Bytes(37, 0x5a);  // not a results serialization
  });
  const auto results = broker_.search(log_.records()[3].text);
  EXPECT_FALSE(results.is_ok());
}

TEST_F(FaultTest, TruncatedRecvRejected) {
  host_enclave().register_ocall(sgx::OcallId::kRecv, [this](ByteSpan) -> Result<Bytes> {
    std::vector<engine::SearchResult> fake(2);
    fake[0].title = "a";
    fake[1].title = "b";
    Bytes raw = wire::serialize_results(fake);
    raw.resize(raw.size() / 2);  // host truncates mid-message
    return raw;
  });
  EXPECT_FALSE(broker_.search(log_.records()[4].text).is_ok());
}

TEST_F(FaultTest, HostCannotForgeResultsSilently) {
  // A malicious host CAN substitute results (the engine is outside the
  // TCB and unauthenticated in the paper's design) — but only well-formed
  // ones, and they still pass through Algorithm 2 filtering. Verify the
  // substituted off-topic results are filtered out rather than delivered.
  host_enclave().register_ocall(sgx::OcallId::kRecv, [](ByteSpan) -> Result<Bytes> {
    std::vector<engine::SearchResult> forged(1);
    forged[0].title = "totally unrelated propaganda";
    forged[0].description = "unrelated words entirely";
    forged[0].url = "https://evil.example/";
    return wire::serialize_results(forged);
  });
  // Warm the history so fakes exist and filtering has decoys to compare.
  for (int i = 0; i < 10; ++i) {
    (void)broker_.search(log_.records()[static_cast<std::size_t>(10 + i)].text);
  }
  const auto results = broker_.search(log_.records()[5].text);
  ASSERT_TRUE(results.is_ok());
  // The forged result shares no words with the query: its original-score is
  // 0, tying every fake, so Algorithm 2's tie rule may keep it — but the
  // client-visible record is authenticated end-to-end, so the user at least
  // cannot be given *tampered* (vs substituted) content. Assert well-formed.
  for (const auto& r : results.value()) {
    EXPECT_FALSE(r.title.empty());
  }
}

TEST_F(FaultTest, RecoveryAfterTransientFault) {
  host_enclave().register_ocall(sgx::OcallId::kSend, [](ByteSpan) -> Result<Bytes> {
    return unavailable("blip");
  });
  EXPECT_FALSE(broker_.search(log_.records()[6].text).is_ok());

  // Host restores connectivity: the same session keeps working because the
  // enclave sends its error through the secure channel (counters stay in
  // sync on both ends).
  XSearchProxy fresh_proxy(&engine_, authority_, make_options());
  ClientBroker fresh_broker(fresh_proxy, authority_, fresh_proxy.measurement(), 2);
  EXPECT_TRUE(fresh_broker.search(log_.records()[7].text).is_ok());
  // And on the original proxy too:
  host_enclave().register_ocall(sgx::OcallId::kSend, [this](ByteSpan payload) -> Result<Bytes> {
    // Re-implement the normal host handler against the engine.
    std::size_t offset = 0;
    auto sock = wire::get_u64(payload, offset);
    if (!sock) return sock.status();
    auto request = wire::parse_engine_request(payload.subspan(offset));
    if (!request) return request.status();
    (void)engine_.search_or(request.value().sub_queries, request.value().top_k_each);
    return Bytes{};
  });
  // The "send" handler above doesn't park the response in the socket table
  // (host-internal detail), so recv yields an empty buffer -> parse error;
  // what matters is the channel survives transient faults without desync:
  const auto after = broker_.search(log_.records()[8].text);
  EXPECT_FALSE(after.is_ok());
  // Channel still alive: error came back *through* the channel.
  EXPECT_NE(after.status().message().find("proxy error"), std::string::npos);
}

TEST_F(FaultTest, DroppedOcallSocketsDoNotKillTheEnclave) {
  // A host that merely drops the worker's engine sockets degrades queries
  // but leaves the trusted side alive: the heartbeat ecall — the signal a
  // supervisor keys respawns on — keeps succeeding. Distinguishing "host
  // sabotages ocalls" from "enclave is gone" is what keeps the supervisor
  // from respawning (and EPC-wiping) a worker over an engine outage.
  host_enclave().register_ocall(sgx::OcallId::kSockConnect, [](ByteSpan) -> Result<Bytes> {
    return unavailable("host dropped the socket table");
  });
  EXPECT_FALSE(broker_.search(log_.records()[9].text).is_ok());
  EXPECT_TRUE(proxy_.heartbeat().is_ok());

  // A crashed enclave, by contrast, fails both.
  proxy_.crash_enclave();
  EXPECT_FALSE(proxy_.heartbeat().is_ok());
  EXPECT_FALSE(broker_.search(log_.records()[9].text).is_ok());
}

// --- fleet layer -------------------------------------------------------------

using testutil::eventually;

TEST(FleetFault, WorkerKilledMidSessionIsRespawnedWarm) {
  const auto dir =
      std::filesystem::temp_directory_path() / "xs_fleet_fault_ckpt";
  std::filesystem::remove_all(dir);
  sgx::AttestationAuthority authority(to_bytes("fleet-fault-root"));

  net::ProxyFleet::Options options;
  options.workers = 2;
  options.proxy.k = 2;
  options.proxy.history_capacity = 4096;
  options.proxy.contact_engine = false;
  options.proxy.checkpoint_dir = dir;
  options.proxy.checkpoint_interval_queries = 4;
  auto fleet = net::ProxyFleet::create(nullptr, authority, options);
  ASSERT_TRUE(fleet.is_ok()) << fleet.status().to_string();
  auto server = net::ProxyServer::start(*fleet.value());
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  // One attested session over real TCP, warmed past two checkpoint
  // intervals — the sealed depth a warm respawn must come back with.
  net::RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                           fleet.value()->measurement(), 99);
  ASSERT_TRUE(broker.connect().is_ok());
  const std::size_t victim = fleet.value()->owner_of(broker.session_id());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(broker.search("fleet warmup " + std::to_string(i)).is_ok());
  }
  const std::size_t checkpointed_depth = 8;  // interval 4: last seal at 8

  net::FleetSupervisor::Options probe;
  probe.probe_interval = 2 * kMilli;
  probe.failure_threshold = 2;
  net::FleetSupervisor supervisor(*fleet.value(), probe);

  // Mid-session kill: the Byzantine host drops the worker's ocall sockets
  // and stops servicing its enclave; the broker still holds a live channel
  // onto the dead arc.
  ASSERT_TRUE(fleet.value()->kill_worker(victim).is_ok());

  // Queries keep being answered throughout: the broker re-attests onto the
  // surviving arc (retry-once) while the supervisor revives the victim.
  std::size_t served_during_outage = 0;
  for (int i = 0; i < 20; ++i) {
    if (broker.search("during outage " + std::to_string(i)).is_ok()) {
      ++served_during_outage;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(served_during_outage, 0u);
  EXPECT_GE(broker.reconnects(), 1u);  // the arc re-attested

  ASSERT_TRUE(
      eventually([&] { return fleet.value()->fleet_stats().auto_respawns >= 1; }));
  supervisor.stop();

  // The revived worker restored exactly the checkpointed depth (plus any
  // outage traffic that hashed back to it — exclude that by checking the
  // restore counter, not just the live depth).
  const auto worker = fleet.value()->worker_stats(victim);
  EXPECT_TRUE(worker.live);
  EXPECT_TRUE(worker.checkpoint.restore_hit);
  EXPECT_EQ(worker.checkpoint.restored_entries, checkpointed_depth);
  const auto stats = fleet.value()->fleet_stats();
  EXPECT_GE(stats.restore_hits, 1u);
  EXPECT_EQ(stats.restore_misses, 0u);
  EXPECT_DOUBLE_EQ(stats.warm_start_ratio, 1.0);

  // Steady state after recovery.
  EXPECT_TRUE(broker.search("after recovery").is_ok());
  server.value()->stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xsearch::core
