// Regression tests for tools/secret_lint.py, the secret-flow linter.
//
// Each case shells out to the linter (python3, stdlib only) against either
// the checked-in fixtures under tests/lint_fixtures/secret/ or the real
// tree, and asserts on exit status + output. This keeps the linter itself
// under ctest: a regex regression that stops flagging a logged key or an
// unregistered expose() tag fails here, not silently in CI.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef XS_SOURCE_DIR
#error "XS_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

bool python_available() {
  return run("python3 --version").exit_code == 0;
}

std::string lint(const std::string& config, const std::string& only = "") {
  std::string cmd = "python3 " XS_SOURCE_DIR "/tools/secret_lint.py --root " XS_SOURCE_DIR
                    " --config " + config;
  if (!only.empty()) cmd += " --only " + only;
  return cmd;
}

const std::string kFixtureConfig =
    XS_SOURCE_DIR "/tests/lint_fixtures/secret_fixture.toml";
const std::string kRealConfig = XS_SOURCE_DIR "/tools/secret_policy.toml";

class SecretLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python_available()) GTEST_SKIP() << "python3 not on PATH";
  }
};

TEST_F(SecretLintTest, LoggedKeyAndBadSinkTagsFail) {
  const auto r =
      run(lint(kFixtureConfig, "tests/lint_fixtures/secret/bad_log_key.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The logged identifier, the unregistered tag, and the tests-only tag in
  // trusted code are three separate findings.
  EXPECT_NE(r.output.find("secret-in-message"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("kBogusSink"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("kTestVector is not allowed in trusted"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("3 finding(s)"), std::string::npos) << r.output;
}

TEST_F(SecretLintTest, WaivedLinePassesAndIsCounted) {
  const auto r = run(
      lint(kFixtureConfig, "tests/lint_fixtures/secret/waived_branch.cpp"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s), 1 waiver(s)"), std::string::npos)
      << r.output;
  // The written reason is echoed, so reviewers see it in CI output.
  EXPECT_NE(r.output.find("demonstrates the per-line waiver syntax"),
            std::string::npos)
      << r.output;
}

TEST_F(SecretLintTest, WaiverWithoutReasonIsAFinding) {
  const auto r =
      run(lint(kFixtureConfig, "tests/lint_fixtures/secret/bare_waiver.cpp"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("no written reason"), std::string::npos) << r.output;
}

// The acceptance gate: the real tree must lint clean — zero unwaived
// findings against tools/secret_policy.toml, with every expose() carrying a
// registered sink tag. A new leak of key material into a log, Status,
// branch, or subscript fails this test locally before CI ever sees it.
TEST_F(SecretLintTest, RealTreeIsClean) {
  const auto r = run(lint(kRealConfig));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
  // The known exposure sites are enumerated, not hidden: the cipher cores
  // read keys, and tests check published vectors.
  EXPECT_NE(r.output.find("exposure site(s)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("expose [kCipherCore]"), std::string::npos)
      << r.output;
}

}  // namespace
