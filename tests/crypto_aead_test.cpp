#include "crypto/aead.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.hpp"

namespace xsearch::crypto {
namespace {

AeadKey key_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  AeadKey::Raw raw{};
  std::memcpy(raw.data(), b.data(), raw.size());
  return AeadKey::absorb(raw);
}

AeadNonce nonce_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  AeadNonce n{};
  std::memcpy(n.data(), b.data(), n.size());
  return n;
}

// RFC 8439 §2.8.2 AEAD test vector.
TEST(Aead, Rfc8439SealVector) {
  const auto key = key_from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const auto nonce = nonce_from_hex("070000004041424344454647");
  const Bytes aad = hex_decode("50515253c0c1c2c3c4c5c6c7");
  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only one "
      "tip for the future, sunscreen would be it.");

  const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);

  const std::string expected_ct =
      "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
      "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
      "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
      "3ff4def08e4b7a9de576d26586cec64b6116";
  const std::string expected_tag = "1ae10b594f09e26a7e902ecbd0600691";
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data(), plaintext.size())), expected_ct);
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data() + plaintext.size(), kAeadTagSize)),
            expected_tag);
}

TEST(Aead, OpenRecoversPlaintext) {
  const auto key = key_from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const auto nonce = nonce_from_hex("070000004041424344454647");
  const Bytes aad = to_bytes("header");
  const Bytes plaintext = to_bytes("secret query: sensitive medical terms");
  const Bytes sealed = aead_seal(key, nonce, aad, plaintext);
  const auto opened = aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, TamperedCiphertextRejected) {
  const auto key = key_from_hex(
      "0101010101010101010101010101010101010101010101010101010101010101");
  const auto nonce = make_nonce(1, 1);
  const Bytes plaintext = to_bytes("payload");
  Bytes sealed = aead_seal(key, nonce, {}, plaintext);
  sealed[0] ^= 0x01;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, TamperedTagRejected) {
  const auto key = key_from_hex(
      "0101010101010101010101010101010101010101010101010101010101010101");
  const auto nonce = make_nonce(1, 2);
  Bytes sealed = aead_seal(key, nonce, {}, to_bytes("payload"));
  sealed.back() ^= 0x80;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, WrongAadRejected) {
  const auto key = key_from_hex(
      "0202020202020202020202020202020202020202020202020202020202020202");
  const auto nonce = make_nonce(0, 0);
  const Bytes sealed = aead_seal(key, nonce, to_bytes("aad-A"), to_bytes("data"));
  EXPECT_FALSE(aead_open(key, nonce, to_bytes("aad-B"), sealed).has_value());
  EXPECT_TRUE(aead_open(key, nonce, to_bytes("aad-A"), sealed).has_value());
}

TEST(Aead, WrongNonceRejected) {
  const auto key = key_from_hex(
      "0303030303030303030303030303030303030303030303030303030303030303");
  const Bytes sealed = aead_seal(key, make_nonce(0, 1), {}, to_bytes("data"));
  EXPECT_FALSE(aead_open(key, make_nonce(0, 2), {}, sealed).has_value());
}

TEST(Aead, WrongKeyRejected) {
  const auto key_a = key_from_hex(
      "0404040404040404040404040404040404040404040404040404040404040404");
  const auto key_b = key_from_hex(
      "0505050505050505050505050505050505050505050505050505050505050505");
  const Bytes sealed = aead_seal(key_a, make_nonce(0, 0), {}, to_bytes("data"));
  EXPECT_FALSE(aead_open(key_b, make_nonce(0, 0), {}, sealed).has_value());
}

TEST(Aead, TruncatedRecordRejected) {
  const auto key = key_from_hex(
      "0606060606060606060606060606060606060606060606060606060606060606");
  const Bytes sealed = aead_seal(key, make_nonce(0, 0), {}, to_bytes("data"));
  EXPECT_FALSE(
      aead_open(key, make_nonce(0, 0), {}, ByteSpan(sealed.data(), 5)).has_value());
  EXPECT_FALSE(aead_open(key, make_nonce(0, 0), {}, {}).has_value());
}

TEST(Aead, EmptyPlaintextRoundTrip) {
  const auto key = key_from_hex(
      "0707070707070707070707070707070707070707070707070707070707070707");
  const Bytes sealed = aead_seal(key, make_nonce(9, 9), to_bytes("aad"), {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  const auto opened = aead_open(key, make_nonce(9, 9), to_bytes("aad"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, MakeNonceEncodesPrefixAndCounter) {
  const auto n1 = make_nonce(0xaabbccdd, 42);
  const auto n2 = make_nonce(0xaabbccdd, 43);
  const auto n3 = make_nonce(0xaabbccde, 42);
  EXPECT_NE(n1, n2);
  EXPECT_NE(n1, n3);
  EXPECT_EQ(load_le32(n1.data()), 0xaabbccddu);
  EXPECT_EQ(load_le64(n1.data() + 4), 42u);
}

TEST(Aead, LargePayloadRoundTrip) {
  const auto key = key_from_hex(
      "0808080808080808080808080808080808080808080808080808080808080808");
  Bytes big(1 << 18, 0xab);
  const Bytes sealed = aead_seal(key, make_nonce(1, 1), {}, big);
  const auto opened = aead_open(key, make_nonce(1, 1), {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, big);
}

}  // namespace
}  // namespace xsearch::crypto
