// Thread-safety-analysis negative fixture: MUST FAIL to compile under
//   clang++ -Isrc -Wthread-safety -Werror=thread-safety
// and is exactly the bug class the annotations exist to catch — the
// SessionTable pattern (a guarded field inside a shard) accessed with the
// lock acquisition deleted. The static-analysis CI job compiles this file
// expecting failure (mirroring PR 4's perf-gate self-test): if it ever
// compiles clean, the analysis has silently stopped checking anything.
//
// Never built by CMake (the test glob is tests/*.cpp, non-recursive).
#include "common/mutex.hpp"

namespace {

// Mirrors xsearch::core::SessionTable::Shard: a mutex and state it guards.
struct Shard {
  xsearch::Mutex mutex;
  int sessions XS_GUARDED_BY(mutex) = 0;
};

int broken_insert(Shard& shard) {
  // BUG (intentional): the `MutexLock lock(shard.mutex);` line was removed.
  // -Werror=thread-safety must reject this write to a guarded field.
  shard.sessions += 1;
  return shard.sessions;
}

}  // namespace

int main() {
  Shard shard;
  return broken_insert(shard);
}
