// Fixture: an "untrusted" translation unit including an enclave-private
// header. tools_tcb_lint_test expects tcb_lint to flag the include
// (untrusted-enclave-header). Never compiled — the header path does not
// even need to resolve here, only to be spelled.
#include "xsearch/history.hpp"

int fixture_untrusted_peek() { return 0; }
