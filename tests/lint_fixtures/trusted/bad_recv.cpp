// Fixture: a "trusted" translation unit calling host recv() directly.
// tools_tcb_lint_test expects tcb_lint to flag this line (trusted-host-io).
#include <sys/socket.h>

long fixture_read_from_host(int fd, void* buf, unsigned long len) {
  return ::recv(fd, buf, len, 0);
}
