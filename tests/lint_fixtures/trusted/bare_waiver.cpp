// Fixture: a waiver with no written reason. tools_tcb_lint_test expects
// tcb_lint to reject it — a bare escape hatch is itself a finding.
#include <sys/socket.h>

long fixture_bare_waiver(int fd, void* buf, unsigned long len) {
  return ::recv(fd, buf, len, 0);  // tcb-lint: allow(trusted-host-io)
}
