// Fixture: the same host call as bad_recv.cpp, but carrying a written
// waiver. tools_tcb_lint_test expects tcb_lint to pass this file and count
// exactly one waiver.
#include <sys/socket.h>

long fixture_waived_read(int fd, void* buf, unsigned long len) {
  // tcb-lint: allow(trusted-host-io) fixture: demonstrates the per-line waiver syntax the real tree uses
  return ::recv(fd, buf, len, 0);
}
