// Secret-flow negative fixture: MUST FAIL to compile under
//   clang++ -fsyntax-only -Isrc -std=c++20
// and is exactly the bug class the Secret<N> wrapper exists to catch:
// key material flowing into operations that copy, compare, or print it.
// The static-analysis CI job compiles this file expecting failure
// (mirroring the tsa_negative.cpp self-test): if it ever compiles clean,
// the wrapper has silently stopped guarding anything.
//
// Never built by CMake (the test glob is tests/*.cpp, non-recursive).
#include <iostream>
#include <string>

#include "crypto/chacha20.hpp"

namespace {

void leak_everywhere(const xsearch::crypto::ChaChaKey& key,
                     const xsearch::crypto::ChaChaKey& other) {
  // BUG (intentional): logging a key. operator<< is explicitly deleted.
  std::cout << key;

  // BUG (intentional): variable-time equality. operator== is deleted;
  // the only sanctioned comparison is constant_time_equal(key, other).
  if (key == other) return;

  // BUG (intentional): copying key bytes into an unwiped std::string.
  // Secret<N> has no begin()/end()/data() — bytes are reachable only
  // through expose(<sink tag>).
  const std::string copy(key.begin(), key.end());
  (void)copy;
}

}  // namespace

int main() {
  const xsearch::crypto::ChaChaKey a, b;
  leak_everywhere(a, b);
  return 0;
}
