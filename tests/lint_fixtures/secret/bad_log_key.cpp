// Fixture: "trusted" code leaking a secret identifier into a log statement
// and exposing through an unregistered / wrong-scope sink tag.
// tools_secret_lint_test expects secret_lint to flag all three lines.
// Never compiled — only the shapes matter.

void fixture_leaks(int session_key_) {
  XS_LOG_INFO("handshake key is " << session_key_);        // secret-in-message
  auto v = secret.expose(SecretSink::kBogusSink);           // unregistered tag
  auto w = secret.expose(SecretSink::kTestVector);          // tests-only sink
  (void)v;
  (void)w;
}
