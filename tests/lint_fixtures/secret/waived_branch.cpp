// Fixture: a branch on a secret identifier carrying a written waiver.
// tools_secret_lint_test expects secret_lint to pass this file and count
// exactly one waiver.

bool fixture_waived_branch(unsigned char private_key) {
  // secret-lint: allow(secret-branch) fixture: demonstrates the per-line waiver syntax the real tree uses
  if (private_key != 0) return true;
  return false;
}
