// Fixture: a waiver with no written reason. tools_secret_lint_test expects
// secret_lint to reject it — a bare escape hatch is itself a finding.

bool fixture_bare_waiver(unsigned char root_key_) {
  if (root_key_ != 0) return true;  // secret-lint: allow(secret-branch)
  return false;
}
