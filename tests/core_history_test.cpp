#include "xsearch/history.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>

#include "xsearch/obfuscator.hpp"

namespace xsearch::core {
namespace {

TEST(QueryHistory, StartsEmpty) {
  QueryHistory h(10);
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.capacity(), 10u);
}

TEST(QueryHistory, AddGrowsUntilCapacity) {
  QueryHistory h(3);
  h.add("a");
  h.add("b");
  EXPECT_EQ(h.size(), 2u);
  h.add("c");
  h.add("d");
  EXPECT_EQ(h.size(), 3u);  // sliding window
}

TEST(QueryHistory, EvictsOldest) {
  QueryHistory h(2);
  h.add("first");
  h.add("second");
  h.add("third");  // evicts "first"
  Rng rng(1);
  const auto all = h.sample(2, rng);
  std::unordered_set<std::string> set(all.begin(), all.end());
  EXPECT_FALSE(set.contains("first"));
  EXPECT_TRUE(set.contains("second"));
  EXPECT_TRUE(set.contains("third"));
}

TEST(QueryHistory, SampleEmptyReturnsNothing) {
  QueryHistory h(5);
  Rng rng(1);
  EXPECT_TRUE(h.sample(3, rng).empty());
}

TEST(QueryHistory, SampleFewerWhenSmall) {
  QueryHistory h(10);
  h.add("only");
  Rng rng(1);
  EXPECT_EQ(h.sample(5, rng).size(), 1u);
}

TEST(QueryHistory, SampleDistinctPositions) {
  QueryHistory h(100);
  for (int i = 0; i < 100; ++i) h.add("q" + std::to_string(i));
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = h.sample(5, rng);
    std::unordered_set<std::string> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 5u);  // distinct entries are distinct strings here
  }
}

TEST(QueryHistory, SampleNearWindowSizeStaysDistinctAndFast) {
  // k close to count was the rejection sampler's pathological regime
  // (O(k·count)); the partial Fisher–Yates must stay O(k) and distinct.
  constexpr std::size_t kCount = 2000;
  QueryHistory h(kCount);
  for (std::size_t i = 0; i < kCount; ++i) h.add("q" + std::to_string(i));
  Rng rng(11);
  for (const std::size_t k : {kCount - 1, kCount / 2 + 1, kCount - 100}) {
    const auto s = h.sample(k, rng);
    ASSERT_EQ(s.size(), k);
    const std::unordered_set<std::string> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), k);  // inputs distinct, so positions were distinct
  }
}

TEST(QueryHistory, SampleCoversWholeWindow) {
  QueryHistory h(20);
  for (int i = 0; i < 20; ++i) h.add("q" + std::to_string(i));
  Rng rng(3);
  std::unordered_set<std::string> seen;
  for (int trial = 0; trial < 300; ++trial) {
    for (auto& q : h.sample(3, rng)) seen.insert(std::move(q));
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(QueryHistory, MemoryMeteredAgainstEpc) {
  sgx::EpcAccountant epc(1 << 20);
  {
    QueryHistory h(100, &epc);
    EXPECT_EQ(epc.in_use(), 0u);  // accounting grows with contents
    h.add("some query text here");
    EXPECT_GE(epc.in_use(), sizeof(std::string) + 20);
  }
  EXPECT_EQ(epc.in_use(), 0u);  // destructor releases everything
}

TEST(QueryHistory, MemoryStableAtCapacity) {
  sgx::EpcAccountant epc(1 << 22);
  QueryHistory h(50, &epc);
  for (int i = 0; i < 50; ++i) h.add("query text of roughly stable size 00");
  const std::size_t at_capacity = epc.in_use();
  for (int i = 0; i < 500; ++i) h.add("query text of roughly stable size 11");
  // Window is full: usage stays flat (same-sized entries replace old ones).
  EXPECT_EQ(epc.in_use(), at_capacity);
}

TEST(QueryHistory, MemoryBytesMatchesEpcCharge) {
  sgx::EpcAccountant epc(1 << 22);
  QueryHistory h(10, &epc);
  h.add("alpha");
  h.add("beta");
  EXPECT_EQ(h.memory_bytes(), epc.in_use());
}

TEST(QueryHistory, ConcurrentAddAndSample) {
  QueryHistory h(1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < 2000; ++i) {
        h.add("thread " + std::to_string(t) + " query " + std::to_string(i));
        (void)h.sample(3, rng);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.size(), 1000u);
}

// ---- Obfuscator (Algorithm 1) --------------------------------------------------

TEST(Obfuscator, ColdStartHasNoFakes) {
  QueryHistory h(10);
  Obfuscator obf(h, 3);
  Rng rng(1);
  const auto q = obf.obfuscate("first ever query", rng);
  EXPECT_EQ(q.original, "first ever query");
  EXPECT_TRUE(q.fakes.empty());
  EXPECT_EQ(q.sub_queries.size(), 1u);
}

TEST(Obfuscator, ProducesKFakesWhenWarm) {
  QueryHistory h(100);
  for (int i = 0; i < 50; ++i) h.add("past " + std::to_string(i));
  Obfuscator obf(h, 3);
  Rng rng(1);
  const auto q = obf.obfuscate("real query", rng);
  EXPECT_EQ(q.fakes.size(), 3u);
  EXPECT_EQ(q.sub_queries.size(), 4u);
}

TEST(Obfuscator, OriginalAlwaysPresent) {
  QueryHistory h(100);
  for (int i = 0; i < 50; ++i) h.add("past " + std::to_string(i));
  Obfuscator obf(h, 5);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto q = obf.obfuscate("needle " + std::to_string(i), rng);
    EXPECT_NE(std::find(q.sub_queries.begin(), q.sub_queries.end(), q.original),
              q.sub_queries.end());
  }
}

TEST(Obfuscator, OriginalPositionIsUniform) {
  QueryHistory h(100);
  for (int i = 0; i < 100; ++i) h.add("past " + std::to_string(i));
  Obfuscator obf(h, 3);
  Rng rng(3);
  int position_counts[4] = {};
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    // A unique needle each trial: prior needles live in the history and
    // could otherwise be drawn as decoys for later trials.
    const std::string needle = "needle-" + std::to_string(i);
    const auto q = obf.obfuscate(needle, rng);
    ASSERT_EQ(q.sub_queries.size(), 4u);
    for (std::size_t p = 0; p < q.sub_queries.size(); ++p) {
      if (q.sub_queries[p] == needle) {
        ++position_counts[p];
        break;
      }
    }
  }
  for (const int c : position_counts) {
    EXPECT_NEAR(c, kTrials / 4, kTrials / 4 * 0.2);
  }
}

TEST(Obfuscator, FakesComeFromHistory) {
  QueryHistory h(100);
  std::unordered_set<std::string> past;
  for (int i = 0; i < 30; ++i) {
    const std::string q = "past " + std::to_string(i);
    h.add(q);
    past.insert(q);
  }
  Obfuscator obf(h, 4);
  Rng rng(4);
  const auto q = obf.obfuscate("fresh query", rng);
  for (const auto& fake : q.fakes) EXPECT_TRUE(past.contains(fake)) << fake;
}

TEST(Obfuscator, StoresOriginalInHistory) {
  QueryHistory h(10);
  Obfuscator obf(h, 2);
  Rng rng(5);
  (void)obf.obfuscate("remember me", rng);
  EXPECT_EQ(h.size(), 1u);
  // The stored query becomes a candidate fake for the *next* request.
  const auto next = obf.obfuscate("another", rng);
  ASSERT_EQ(next.fakes.size(), 1u);
  EXPECT_EQ(next.fakes[0], "remember me");
}

TEST(Obfuscator, QueryNeverItsOwnDecoy) {
  QueryHistory h(10);
  Obfuscator obf(h, 5);
  Rng rng(6);
  const auto q = obf.obfuscate("unique-snowflake", rng);
  for (const auto& fake : q.fakes) EXPECT_NE(fake, "unique-snowflake");
}

TEST(Obfuscator, ToQueryStringJoinsWithOr) {
  ObfuscatedQuery q;
  q.sub_queries = {"alpha", "beta gamma", "delta"};
  EXPECT_EQ(q.to_query_string(), "alpha OR beta gamma OR delta");
}

TEST(Obfuscator, KZeroIsUnlinkabilityOnly) {
  QueryHistory h(10);
  h.add("noise");
  Obfuscator obf(h, 0);
  Rng rng(7);
  const auto q = obf.obfuscate("plain", rng);
  EXPECT_TRUE(q.fakes.empty());
  EXPECT_EQ(q.to_query_string(), "plain");
}

}  // namespace
}  // namespace xsearch::core
