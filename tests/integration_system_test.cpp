// Whole-system integration tests: small-scale replicas of the paper's
// evaluation claims, asserted qualitatively. These are the repository's
// regression net for the figure benches — if one of these fails, a bench
// would show a broken shape.
#include <gtest/gtest.h>

#include <unordered_set>

#include "attack/simattack.hpp"
#include "baselines/peas/peas.hpp"
#include "common/rng.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/filter.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kTopUsers = 30;

  SystemTest() {
    dataset::SyntheticLogConfig config;
    config.seed = 77;
    config.num_users = 120;
    config.total_queries = 15'000;
    config.vocab_size = 4'000;
    config.num_topics = 40;
    log_ = dataset::generate_synthetic_log(config);
    top_ = log_.most_active_users(kTopUsers);
    split_ = dataset::split_per_user(log_.filter_users(top_), 2.0 / 3.0);
    corpus_ = std::make_unique<engine::Corpus>(
        log_, engine::CorpusConfig{.seed = 78, .num_documents = 4'000});
    engine_ = std::make_unique<engine::SearchEngine>(*corpus_);
  }

  // Re-identification rate under X-Search obfuscation at a given k.
  double xsearch_reid_rate(const attack::SimAttack& adversary, std::size_t k,
                           std::size_t n_queries) const {
    core::QueryHistory history(50'000);
    for (const auto& r : split_.train.records()) history.add(r.text);
    core::Obfuscator obfuscator(history, k);
    Rng rng(500 + k);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n_queries; ++i) {
      const auto& rec = split_.test.records()[i * 17 % split_.test.size()];
      const auto obf = obfuscator.obfuscate(rec.text, rng);
      const auto id = adversary.attack(obf.sub_queries);
      if (id && id->user == rec.user && id->query == rec.text) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(n_queries);
  }

  dataset::QueryLog log_;
  std::vector<dataset::UserId> top_;
  dataset::TrainTestSplit split_;
  std::unique_ptr<engine::Corpus> corpus_;
  std::unique_ptr<engine::SearchEngine> engine_;
};

TEST_F(SystemTest, Claim1_ObfuscationReducesReidentification) {
  attack::SimAttack adversary(split_.train);
  const double k0 = xsearch_reid_rate(adversary, 0, 120);
  const double k3 = xsearch_reid_rate(adversary, 3, 120);
  // Unlinkability alone leaves substantial exposure; obfuscation slashes it.
  EXPECT_GT(k0, 0.25);
  EXPECT_LT(k3, k0 * 0.6);
}

TEST_F(SystemTest, Claim2_MoreFakesMorePrivacy) {
  attack::SimAttack adversary(split_.train);
  const double k1 = xsearch_reid_rate(adversary, 1, 120);
  const double k7 = xsearch_reid_rate(adversary, 7, 120);
  EXPECT_LT(k7, k1);
}

TEST_F(SystemTest, Claim3_XSearchBeatsPeas) {
  attack::SimAttack adversary(split_.train);
  constexpr std::size_t kK = 3;
  constexpr std::size_t kN = 120;

  const double xs = xsearch_reid_rate(adversary, kK, kN);

  baselines::peas::FakeQueryGenerator peas_gen(split_.train);
  Rng rng(501);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto& rec = split_.test.records()[i * 17 % split_.test.size()];
    auto subs = peas_gen.generate_k(rec.text, kK, rng);
    subs.insert(subs.begin() + static_cast<std::ptrdiff_t>(rng.uniform(subs.size() + 1)),
                rec.text);
    const auto id = adversary.attack(subs);
    if (id && id->user == rec.user && id->query == rec.text) ++correct;
  }
  const double peas = static_cast<double>(correct) / static_cast<double>(kN);
  EXPECT_LT(xs, peas);
}

TEST_F(SystemTest, Claim4_FilteringPreservesAccuracy) {
  core::QueryHistory history(50'000);
  for (const auto& r : split_.train.records()) history.add(r.text);
  core::Obfuscator obfuscator(history, 2);
  core::ResultFilter filter;
  Rng rng(502);

  double precision_sum = 0, recall_sum = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto& query = split_.test.records()[i * 13 % split_.test.size()].text;
    const auto reference = engine_->search(query, 20);
    if (reference.empty()) continue;
    std::unordered_set<engine::DocId> ref_docs;
    for (const auto& r : reference) ref_docs.insert(r.doc);

    const auto obf = obfuscator.obfuscate(query, rng);
    const auto kept =
        filter.filter(obf.original, obf.fakes, engine_->search_or(obf.sub_queries, 20));
    if (kept.empty()) continue;
    std::size_t inter = 0;
    for (const auto& r : kept) inter += ref_docs.contains(r.doc);
    precision_sum += static_cast<double>(inter) / static_cast<double>(kept.size());
    recall_sum += static_cast<double>(inter) / static_cast<double>(reference.size());
    ++counted;
  }
  ASSERT_GT(counted, 30u);
  EXPECT_GT(precision_sum / static_cast<double>(counted), 0.7);
  EXPECT_GT(recall_sum / static_cast<double>(counted), 0.8);
}

TEST_F(SystemTest, Claim5_EndToEndThroughProxyKeepsQueryPrivate) {
  sgx::AttestationAuthority authority(to_bytes("it-root"));
  core::XSearchProxy::Options options;
  options.k = 3;
  options.history_capacity = 50'000;
  core::XSearchProxy proxy(engine_.get(), authority, options);

  std::vector<std::string> engine_saw;
  engine_->set_observer([&engine_saw](std::string_view q) {
    engine_saw.emplace_back(q);
  });

  core::ClientBroker broker(proxy, authority, proxy.measurement(), 503);
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(broker.search(split_.train.records()[i * 7].text).is_ok());
  }

  const std::string secret = split_.test.records()[42].text;
  engine_saw.clear();
  const auto results = broker.search(secret);
  ASSERT_TRUE(results.is_ok());

  // The engine never saw the bare secret; only an OR aggregation.
  ASSERT_EQ(engine_saw.size(), 1u);
  EXPECT_NE(engine_saw[0], secret);
  EXPECT_NE(engine_saw[0].find(" OR "), std::string::npos);

  // And the adversary watching the engine cannot reliably decode it:
  attack::SimAttack adversary(split_.train);
  // (a single query gives no certainty — we just assert the machinery runs
  // and yields a well-formed verdict or none at all)
  const auto verdict = adversary.attack({engine_saw[0]});
  (void)verdict;
}

TEST_F(SystemTest, Claim6_EpcBudgetHolds) {
  sgx::AttestationAuthority authority(to_bytes("it-root"));
  core::XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 1'000'000;
  core::XSearchProxy proxy(engine_.get(), authority, options);
  core::ClientBroker broker(proxy, authority, proxy.measurement(), 504);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(broker.search(split_.train.records()[i % split_.train.size()].text)
                    .is_ok());
  }
  EXPECT_FALSE(proxy.enclave().epc().over_limit());
  EXPECT_EQ(proxy.enclave().epc().page_faults(), 0u);
}

}  // namespace
}  // namespace xsearch
