#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"
#include "sgx/epc.hpp"

namespace xsearch::sgx {
namespace {

// ---- EPC accounting ---------------------------------------------------------

TEST(Epc, ChargeAndRelease) {
  EpcAccountant epc(1024);
  epc.charge(100);
  EXPECT_EQ(epc.in_use(), 100u);
  epc.release(40);
  EXPECT_EQ(epc.in_use(), 60u);
}

TEST(Epc, PeakTracksHighWaterMark) {
  EpcAccountant epc(1 << 20);
  epc.charge(500);
  epc.release(400);
  epc.charge(100);
  EXPECT_EQ(epc.peak(), 500u);
}

TEST(Epc, OverReleaseClampsAtZero) {
  EpcAccountant epc(1024);
  epc.charge(10);
  epc.release(100);
  EXPECT_EQ(epc.in_use(), 0u);
}

TEST(Epc, NoFaultsUnderLimit) {
  EpcAccountant epc(1 << 20);
  epc.charge((1 << 20) - 1);
  EXPECT_FALSE(epc.over_limit());
  EXPECT_EQ(epc.page_faults(), 0u);
}

TEST(Epc, FaultsWhenExceedingLimit) {
  EpcAccountant epc(kEpcPageSize * 10);
  epc.charge(kEpcPageSize * 10);
  EXPECT_EQ(epc.page_faults(), 0u);
  epc.charge(kEpcPageSize * 3);  // three pages beyond
  EXPECT_TRUE(epc.over_limit());
  EXPECT_EQ(epc.page_faults(), 3u);
}

TEST(Epc, PartialPageBeyondLimitCountsOneFault) {
  EpcAccountant epc(kEpcPageSize);
  epc.charge(kEpcPageSize + 1);
  EXPECT_EQ(epc.page_faults(), 1u);
}

TEST(Epc, ConcurrentChargesConsistent) {
  EpcAccountant epc(std::size_t{1} << 30);
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&epc] {
      for (int i = 0; i < kIters; ++i) {
        epc.charge(16);
        epc.release(16);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(epc.in_use(), 0u);
}

TEST(Epc, DefaultLimitIs90MiB) {
  EpcAccountant epc;
  EXPECT_EQ(epc.limit(), 90ull * 1024 * 1024);
}

// ---- Enclave runtime ---------------------------------------------------------

EnclaveRuntime::Config test_config(std::string identity = "enclave-code-v1") {
  EnclaveRuntime::Config config;
  config.code_identity = to_bytes(identity);
  return config;
}

TEST(Enclave, MeasurementIsCodeHash) {
  EnclaveRuntime a(test_config());
  EnclaveRuntime b(test_config());
  EnclaveRuntime c(test_config("different-code"));
  EXPECT_EQ(a.measurement(), b.measurement());
  EXPECT_NE(a.measurement(), c.measurement());
}

TEST(Enclave, EcallDispatchAndCount) {
  EnclaveRuntime enclave(test_config());
  enclave.register_ecall(EcallId::kRequest, [](ByteSpan in) -> Result<Bytes> {
    return Bytes(in.begin(), in.end());
  });
  const auto out = enclave.ecall(EcallId::kRequest, to_bytes("ping"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(to_string(out.value()), "ping");
  EXPECT_EQ(enclave.transition_stats().ecalls, 1u);
  EXPECT_EQ(enclave.transition_stats().ocalls, 0u);
}

TEST(Enclave, UnregisteredEcallFails) {
  // The typed table makes unknown *names* unrepresentable; an id whose slot
  // was never registered still fails closed.
  EnclaveRuntime enclave(test_config());
  const auto status = enclave.ecall(EcallId::kInit, {}).status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("init"), std::string::npos);
}

TEST(Enclave, OcallDispatchAndCount) {
  EnclaveRuntime enclave(test_config());
  enclave.register_ocall(OcallId::kSend, [](ByteSpan in) -> Result<Bytes> {
    Bytes out(in.begin(), in.end());
    for (auto& b : out) b = static_cast<std::uint8_t>(b + 1);
    return out;
  });
  const auto out = enclave.ocall(OcallId::kSend, Bytes{1, 2});
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), (Bytes{2, 3}));
  EXPECT_EQ(enclave.transition_stats().ocalls, 1u);
}

TEST(Enclave, UnregisteredOcallFails) {
  EnclaveRuntime enclave(test_config());
  EXPECT_EQ(enclave.ocall(OcallId::kClose, {}).status().code(),
            StatusCode::kNotFound);
}

TEST(Enclave, NestedOcallFromEcall) {
  EnclaveRuntime enclave(test_config());
  enclave.register_ocall(OcallId::kRecv, [](ByteSpan) -> Result<Bytes> {
    return to_bytes("host-data");
  });
  enclave.register_ecall(EcallId::kRequest, [&enclave](ByteSpan) -> Result<Bytes> {
    return enclave.ocall(OcallId::kRecv, {});
  });
  const auto out = enclave.ecall(EcallId::kRequest, {});
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(to_string(out.value()), "host-data");
  EXPECT_EQ(enclave.transition_stats().ecalls, 1u);
  EXPECT_EQ(enclave.transition_stats().ocalls, 1u);
}

TEST(Enclave, BoundaryNameTableMatchesEnums) {
  // The pinned name surface (tools/tcb_boundary.toml) maps 1:1 to the
  // enums; spot-check the accessors the lint and wire paths rely on.
  EXPECT_EQ(ecall_name(EcallId::kInit), "init");
  EXPECT_EQ(ecall_name(EcallId::kRequest), "request");
  EXPECT_EQ(ecall_name(EcallId::kRunWorkers), "run_workers");
  EXPECT_EQ(ocall_name(OcallId::kSockConnect), "sock_connect");
  EXPECT_EQ(ocall_name(OcallId::kSend), "send");
  EXPECT_EQ(ocall_name(OcallId::kRecv), "recv");
  EXPECT_EQ(ocall_name(OcallId::kClose), "close");
  EXPECT_EQ(kEcallNames.size(), kEcallCount);
  EXPECT_EQ(kOcallNames.size(), kOcallCount);
}

TEST(Enclave, SealUnsealRoundTrip) {
  EnclaveRuntime enclave(test_config());
  const Bytes secret = to_bytes("the user searched for chronic pain");
  const Bytes sealed = enclave.seal(secret);
  EXPECT_NE(sealed, secret);
  const auto opened = enclave.unseal(sealed);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), secret);
}

TEST(Enclave, SealedBlobsDifferAcrossCalls) {
  EnclaveRuntime enclave(test_config());
  EXPECT_NE(enclave.seal(to_bytes("x")), enclave.seal(to_bytes("x")));
}

TEST(Enclave, UnsealAcrossSameMeasurement) {
  EnclaveRuntime a(test_config());
  EnclaveRuntime b(test_config());
  const Bytes sealed = a.seal(to_bytes("shared state"));
  EXPECT_TRUE(b.unseal(sealed).is_ok());  // same code identity
}

TEST(Enclave, UnsealRejectsDifferentMeasurement) {
  EnclaveRuntime a(test_config());
  EnclaveRuntime c(test_config("different-code"));
  const Bytes sealed = a.seal(to_bytes("secret"));
  EXPECT_FALSE(c.unseal(sealed).is_ok());
}

TEST(Enclave, UnsealRejectsTampering) {
  EnclaveRuntime enclave(test_config());
  Bytes sealed = enclave.seal(to_bytes("secret"));
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(enclave.unseal(sealed).is_ok());
}

TEST(Enclave, UnsealRejectsTruncation) {
  EnclaveRuntime enclave(test_config());
  EXPECT_FALSE(enclave.unseal(Bytes{1, 2, 3}).is_ok());
}

TEST(EnclaveAllocator, MetersVectors) {
  EpcAccountant epc(1 << 20);
  {
    std::vector<int, EnclaveAllocator<int>> v{EnclaveAllocator<int>(&epc)};
    v.reserve(1000);
    EXPECT_GE(epc.in_use(), 1000 * sizeof(int));
  }
  EXPECT_EQ(epc.in_use(), 0u);
}

// ---- Attestation --------------------------------------------------------------

TEST(Attestation, IssueAndVerify) {
  AttestationAuthority authority(to_bytes("intel-root-key"));
  EnclaveRuntime enclave(test_config());
  const Quote quote = authority.issue(enclave.measurement(), to_bytes("report"));
  EXPECT_TRUE(authority.verify(quote));
}

TEST(Attestation, ForgedQuoteRejected) {
  AttestationAuthority authority(to_bytes("intel-root-key"));
  AttestationAuthority rogue(to_bytes("attacker-key"));
  EnclaveRuntime enclave(test_config());
  const Quote quote = rogue.issue(enclave.measurement(), to_bytes("report"));
  EXPECT_FALSE(authority.verify(quote));
}

TEST(Attestation, TamperedReportDataRejected) {
  AttestationAuthority authority(to_bytes("intel-root-key"));
  EnclaveRuntime enclave(test_config());
  Quote quote = authority.issue(enclave.measurement(), to_bytes("report"));
  quote.report_data[0] ^= 1;
  EXPECT_FALSE(authority.verify(quote));
}

TEST(Attestation, VerifyEnclaveChecksMeasurement) {
  AttestationAuthority authority(to_bytes("intel-root-key"));
  EnclaveRuntime good(test_config());
  EnclaveRuntime evil(test_config("evil-code"));
  const Quote quote = authority.issue(evil.measurement(), to_bytes("r"));
  EXPECT_TRUE(authority.verify(quote));  // authentic quote...
  EXPECT_FALSE(authority.verify_enclave(quote, good.measurement()).is_ok());
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  AttestationAuthority authority(to_bytes("k"));
  EnclaveRuntime enclave(test_config());
  const Quote quote = authority.issue(enclave.measurement(), to_bytes("payload"));
  const auto parsed = Quote::deserialize(quote.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().measurement, quote.measurement);
  EXPECT_EQ(parsed.value().report_data, quote.report_data);
  EXPECT_EQ(parsed.value().mac, quote.mac);
}

TEST(Attestation, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Quote::deserialize(Bytes{1, 2, 3}).is_ok());
  Bytes too_long(200, 0);
  EXPECT_FALSE(Quote::deserialize(too_long).is_ok());
}

TEST(Attestation, ChannelKeyExtraction) {
  AttestationAuthority authority(to_bytes("k"));
  EnclaveRuntime enclave(test_config());
  crypto::X25519Key key{};
  key.fill(7);
  const Quote quote = quote_channel_key(authority, enclave, key);
  const auto extracted =
      verify_and_extract_channel_key(authority, quote, enclave.measurement());
  ASSERT_TRUE(extracted.is_ok());
  EXPECT_EQ(extracted.value(), key);
}

TEST(Attestation, ChannelKeyExtractionRejectsWrongMeasurement) {
  AttestationAuthority authority(to_bytes("k"));
  EnclaveRuntime enclave(test_config());
  EnclaveRuntime other(test_config("other"));
  crypto::X25519Key key{};
  key.fill(7);
  const Quote quote = quote_channel_key(authority, enclave, key);
  EXPECT_FALSE(
      verify_and_extract_channel_key(authority, quote, other.measurement()).is_ok());
}

}  // namespace
}  // namespace xsearch::sgx
