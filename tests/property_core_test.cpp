// Property tests of the X-Search core invariants, swept over the (k,
// history size) parameter grid with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <unordered_set>

#include "common/rng.hpp"
#include "engine/document.hpp"
#include "xsearch/filter.hpp"
#include "xsearch/history.hpp"
#include "xsearch/obfuscator.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

// ---- Obfuscator invariants over (k, warm size) -------------------------------

class ObfuscatorGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  std::size_t k() const { return std::get<0>(GetParam()); }
  std::size_t warm() const { return std::get<1>(GetParam()); }
};

TEST_P(ObfuscatorGrid, StructuralInvariants) {
  QueryHistory history(10'000);
  for (std::size_t i = 0; i < warm(); ++i) history.add("past " + std::to_string(i));
  Obfuscator obfuscator(history, k());
  Rng rng(k() * 31 + warm());

  for (int trial = 0; trial < 30; ++trial) {
    const std::string query = "real query " + std::to_string(trial);
    const auto obf = obfuscator.obfuscate(query, rng);

    // (1) The original survives verbatim.
    EXPECT_EQ(obf.original, query);
    // (2) Exactly min(k, available) fakes.
    EXPECT_EQ(obf.fakes.size(), std::min(k(), warm() + static_cast<std::size_t>(trial)));
    // (3) sub_queries = fakes + original, nothing more.
    EXPECT_EQ(obf.sub_queries.size(), obf.fakes.size() + 1);
    EXPECT_EQ(std::count(obf.sub_queries.begin(), obf.sub_queries.end(), query), 1);
    for (const auto& fake : obf.fakes) {
      EXPECT_NE(std::find(obf.sub_queries.begin(), obf.sub_queries.end(), fake),
                obf.sub_queries.end());
    }
    // (4) The OR string contains every sub-query.
    const std::string or_string = obf.to_query_string();
    for (const auto& sub : obf.sub_queries) {
      EXPECT_NE(or_string.find(sub), std::string::npos);
    }
    // (5) A query is never its own decoy.
    for (const auto& fake : obf.fakes) EXPECT_NE(fake, query);
  }
}

TEST_P(ObfuscatorGrid, HistoryNeverExceedsCapacity) {
  constexpr std::size_t kCapacity = 64;
  QueryHistory history(kCapacity);
  Obfuscator obfuscator(history, k());
  Rng rng(99);
  for (std::size_t i = 0; i < warm() + 200; ++i) {
    (void)obfuscator.obfuscate("q" + std::to_string(i), rng);
    EXPECT_LE(history.size(), kCapacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndWarmth, ObfuscatorGrid,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 3, 7),
                       ::testing::Values<std::size_t>(0, 1, 5, 100)));

// ---- Filter invariants over k ----------------------------------------------------

class FilterGrid : public ::testing::TestWithParam<std::size_t> {};

engine::SearchResult result_about(const std::string& topic, unsigned index) {
  engine::SearchResult r;
  r.doc = index;
  r.title = topic + " article " + std::to_string(index);
  r.description = "all about " + topic + " and more " + topic;
  r.url = "https://site.example/" + std::to_string(index);
  return r;
}

TEST_P(FilterGrid, KeptSetIsSubsetAndOriginalBiased) {
  const std::size_t k = GetParam();
  std::vector<std::string> fakes;
  std::vector<engine::SearchResult> mixed;
  unsigned id = 0;
  for (std::size_t f = 0; f < k; ++f) {
    const std::string topic = "decoy" + std::to_string(f);
    fakes.push_back(topic + " words");
    mixed.push_back(result_about(topic, id++));
  }
  mixed.push_back(result_about("target", id++));
  mixed.push_back(result_about("target", id++));

  ResultFilter filter;
  const auto kept = filter.filter("target words", fakes, mixed);

  // Subset property: every kept result was in the input.
  std::unordered_set<unsigned> input_ids;
  for (const auto& r : mixed) input_ids.insert(r.doc);
  for (const auto& r : kept) EXPECT_TRUE(input_ids.contains(r.doc));

  // Both target results survive; every decoy-topic result is dropped.
  EXPECT_EQ(kept.size(), 2u);
  for (const auto& r : kept) {
    EXPECT_NE(r.title.find("target"), std::string::npos);
  }
}

TEST_P(FilterGrid, FilterIsIdempotent) {
  const std::size_t k = GetParam();
  std::vector<std::string> fakes;
  for (std::size_t f = 0; f < k; ++f) fakes.push_back("decoy" + std::to_string(f));
  std::vector<engine::SearchResult> results;
  for (unsigned i = 0; i < 10; ++i) results.push_back(result_about("mixed", i));

  ResultFilter filter;
  const auto once = filter.filter("mixed subject", fakes, results);
  const auto twice = filter.filter("mixed subject", fakes, once);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Ks, FilterGrid, ::testing::Values<std::size_t>(0, 1, 2, 5, 8));

// ---- History sampling distribution over window sizes ------------------------------

class HistoryGrid : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistoryGrid, SamplingIsApproximatelyUniform) {
  const std::size_t n = GetParam();
  QueryHistory history(n);
  for (std::size_t i = 0; i < n; ++i) history.add("q" + std::to_string(i));
  Rng rng(n);
  std::unordered_map<std::string, int> counts;
  const int trials = static_cast<int>(n) * 60;
  for (int t = 0; t < trials; ++t) {
    for (auto& q : history.sample(1, rng)) ++counts[q];
  }
  // Every entry sampled at least once; no entry dominates.
  EXPECT_EQ(counts.size(), n);
  for (const auto& [q, c] : counts) {
    EXPECT_GT(c, 0) << q;
    EXPECT_LT(c, trials / static_cast<int>(n) * 4) << q;
  }
}

TEST_P(HistoryGrid, SnapshotMatchesSizeAndOrder) {
  const std::size_t n = GetParam();
  QueryHistory history(n);
  for (std::size_t i = 0; i < n * 2; ++i) history.add("q" + std::to_string(i));
  const auto snap = history.snapshot();
  ASSERT_EQ(snap.size(), n);
  // Oldest surviving entry is q[n], newest is q[2n-1].
  EXPECT_EQ(snap.front(), "q" + std::to_string(n));
  EXPECT_EQ(snap.back(), "q" + std::to_string(2 * n - 1));
}

INSTANTIATE_TEST_SUITE_P(Windows, HistoryGrid,
                         ::testing::Values<std::size_t>(1, 2, 7, 32, 100));

// ---- wire format round-trips over structured random inputs -------------------------

class WireGrid : public ::testing::TestWithParam<int> {};

TEST_P(WireGrid, ResultListRoundTripsForRandomContent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<engine::SearchResult> results;
  const std::size_t n = rng.uniform(20);
  for (std::size_t i = 0; i < n; ++i) {
    engine::SearchResult r;
    r.doc = static_cast<engine::DocId>(rng.next());
    const auto rand_string = [&rng](std::size_t max_len) {
      std::string s;
      const std::size_t len = rng.uniform(max_len + 1);
      for (std::size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
      }
      return s;
    };
    r.title = rand_string(60);
    r.description = rand_string(200);
    r.url = rand_string(80);
    r.score = rng.normal(0, 100);
    results.push_back(std::move(r));
  }
  const auto parsed = wire::parse_results(wire::serialize_results(results));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), results);
}

TEST_P(WireGrid, TruncationNeverCrashesParser) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) ^ 0x771);
  std::vector<engine::SearchResult> results(3);
  results[0].title = "alpha";
  results[1].description = "beta";
  results[2].url = "gamma";
  const Bytes raw = wire::serialize_results(results);
  for (std::size_t cut = 0; cut < raw.size(); ++cut) {
    // Every strict prefix must be cleanly rejected (totality).
    EXPECT_FALSE(wire::parse_results(ByteSpan(raw.data(), cut)).is_ok()) << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireGrid, ::testing::Range(1, 9));

}  // namespace
}  // namespace xsearch::core
