#include "netsim/netsim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace xsearch::netsim {
namespace {

std::vector<Nanos> draw(const LinkModel& link, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Nanos> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(link.sample(rng));
  std::sort(out.begin(), out.end());
  return out;
}

double percentile(const std::vector<Nanos>& sorted, double p) {
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[idx]);
}

TEST(LinkModel, MedianCalibrated) {
  const LinkModel link{.median_ms = 50.0, .sigma = 0.3, .min_ms = 1.0};
  const auto samples = draw(link, 20000, 1);
  EXPECT_NEAR(percentile(samples, 0.5) / static_cast<double>(kMilli), 50.0, 2.5);
}

TEST(LinkModel, SigmaWidensTail) {
  const LinkModel narrow{.median_ms = 50.0, .sigma = 0.1, .min_ms = 1.0};
  const LinkModel wide{.median_ms = 50.0, .sigma = 0.8, .min_ms = 1.0};
  const auto narrow_samples = draw(narrow, 20000, 2);
  const auto wide_samples = draw(wide, 20000, 2);
  const double narrow_ratio =
      percentile(narrow_samples, 0.99) / percentile(narrow_samples, 0.5);
  const double wide_ratio =
      percentile(wide_samples, 0.99) / percentile(wide_samples, 0.5);
  EXPECT_GT(wide_ratio, narrow_ratio * 2);
}

TEST(LinkModel, CongestionMixtureAddsHeavyTail) {
  LinkModel base{.median_ms = 80.0, .sigma = 0.3, .min_ms = 1.0};
  LinkModel congested = base;
  congested.congestion_probability = 0.1;
  congested.congestion_multiplier = 8.0;

  const auto base_samples = draw(base, 20000, 3);
  const auto congested_samples = draw(congested, 20000, 3);
  // Median barely moves; p99 explodes.
  EXPECT_NEAR(percentile(congested_samples, 0.5), percentile(base_samples, 0.5),
              percentile(base_samples, 0.5) * 0.15);
  EXPECT_GT(percentile(congested_samples, 0.99), percentile(base_samples, 0.99) * 3);
}

TEST(LinkModel, FloorIsRespected) {
  const LinkModel link{.median_ms = 0.5, .sigma = 2.0, .min_ms = 0.4};
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(link.sample(rng),
              static_cast<Nanos>(0.4 * static_cast<double>(kMilli)));
  }
}

TEST(LinkModel, DeterministicGivenSeed) {
  const LinkModel link = links::tor_hop();
  EXPECT_EQ(draw(link, 100, 7), draw(link, 100, 7));
}

TEST(CalibratedLinks, Fig7MediansInOrder) {
  // Direct < X-Search < Tor, as in Figure 7 (medians of full-path sums).
  Rng rng(5);
  const auto engine = links::engine_processing();
  const auto c2e = links::client_to_engine();
  const auto c2p = links::client_to_proxy();
  const auto p2e = links::proxy_to_engine();
  const auto hop = links::tor_hop();

  auto median_of = [&](auto&& path_sample) {
    std::vector<Nanos> totals;
    for (int i = 0; i < 4000; ++i) totals.push_back(path_sample());
    std::sort(totals.begin(), totals.end());
    return totals[totals.size() / 2];
  };

  const Nanos direct = median_of([&] { return 2 * c2e.sample(rng) + engine.sample(rng); });
  const Nanos xsearch = median_of([&] {
    return 2 * c2p.sample(rng) + 2 * p2e.sample(rng) +
           static_cast<Nanos>(1.16 * static_cast<double>(engine.sample(rng)));
  });
  const Nanos tor = median_of([&] {
    Nanos t = engine.sample(rng);
    for (int h = 0; h < 6; ++h) t += hop.sample(rng);
    return t;
  });

  EXPECT_LT(direct, xsearch);
  EXPECT_LT(xsearch, tor);
  // Tor lands near the paper's 1.06 s.
  EXPECT_NEAR(static_cast<double>(tor) / static_cast<double>(kSecond), 1.1, 0.25);
}

TEST(ServiceCost, ChargeBurnsConfiguredTime) {
  const ServiceCostModel cost{.cost_per_request = 2 * kMilli};
  const Nanos t0 = wall_now();
  cost.charge();
  EXPECT_GE(wall_now() - t0, 2 * kMilli);
}

TEST(ServiceCost, ZeroCostIsFree) {
  const ServiceCostModel cost{.cost_per_request = 0};
  const Nanos t0 = wall_now();
  for (int i = 0; i < 1000; ++i) cost.charge();
  EXPECT_LT(wall_now() - t0, 10 * kMilli);
}

}  // namespace
}  // namespace xsearch::netsim
