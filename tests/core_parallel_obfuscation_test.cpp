// Parallel obfuscation: per-session RNG streams and lock-free history.
//
// The proxy's query hot path holds no global lock: each session draws
// obfuscation randomness from its own stream (a deterministic fork of the
// proxy seed by session id, held in the SessionTable behind the session
// lock) and history sampling takes a shared reader lock. This suite pins
// both halves of that design:
//
//  * determinism — same seed, same session order, same queries ⇒ the exact
//    same OR queries leave the enclave, and a different seed diverges;
//  * data-race freedom — many threads × many sessions hammer one proxy
//    while the history absorbs concurrent add/sample traffic. Run under
//    ThreadSanitizer in CI (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/history.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::core {
namespace {

class ParallelObfuscationTest : public ::testing::Test {
 protected:
  static dataset::QueryLog make_log() {
    dataset::SyntheticLogConfig config;
    config.num_users = 20;
    config.total_queries = 1200;
    config.vocab_size = 900;
    config.num_topics = 10;
    return dataset::generate_synthetic_log(config);
  }

  ParallelObfuscationTest()
      : log_(make_log()),
        corpus_(log_, engine::CorpusConfig{.seed = 5, .num_documents = 600}),
        engine_(corpus_),
        authority_(to_bytes("parallel-root")) {}

  XSearchProxy::Options options(std::uint64_t seed) {
    XSearchProxy::Options opt;
    opt.k = 3;
    opt.history_capacity = 10'000;
    opt.seed = seed;
    return opt;
  }

  /// Runs the same deterministic script against a fresh proxy: warm the
  /// history, open two sessions in a fixed order, alternate queries between
  /// them, and record every OR query the engine observes.
  std::vector<std::string> observed_or_queries(std::uint64_t seed) {
    XSearchProxy proxy(&engine_, authority_, options(seed));
    std::vector<std::string> warm;
    for (std::size_t i = 0; i < 40; ++i) warm.push_back(log_.records()[i].text);
    proxy.warm_history(warm);

    std::vector<std::string> observed;
    engine_.set_observer(
        [&observed](std::string_view q) { observed.emplace_back(q); });

    ClientBroker alice(proxy, authority_, proxy.measurement(), 1);
    ClientBroker bob(proxy, authority_, proxy.measurement(), 2);
    EXPECT_TRUE(alice.connect().is_ok());
    EXPECT_TRUE(bob.connect().is_ok());
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_TRUE(alice.search(log_.records()[100 + i].text).is_ok());
      EXPECT_TRUE(bob.search(log_.records()[200 + i].text).is_ok());
    }
    engine_.set_observer(nullptr);
    return observed;
  }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
};

TEST_F(ParallelObfuscationTest, SameSeedSameSessionOrderSameFakes) {
  const auto first = observed_or_queries(0xdeed);
  const auto second = observed_or_queries(0xdeed);
  ASSERT_EQ(first.size(), 20u);
  // Per-session streams are pure functions of (seed, session id): replaying
  // the script reproduces every OR query — fakes, order and insert position.
  EXPECT_EQ(first, second);
}

TEST_F(ParallelObfuscationTest, DifferentSeedDivergesSomewhere) {
  const auto first = observed_or_queries(0xdeed);
  const auto other = observed_or_queries(0xfeed);
  ASSERT_EQ(first.size(), other.size());
  // 20 draws of 3 fakes from a 40+-entry history under a different seed:
  // identical output would mean the seed never reached the streams.
  EXPECT_NE(first, other);
}

TEST_F(ParallelObfuscationTest, SessionsHaveIndependentStreams) {
  // Both sessions issue the *same* query against the same warm history; if
  // they shared one stream position the two OR queries could still differ,
  // but with per-session forks they must also differ from a replay where
  // the sessions swap creation order — the stream belongs to the session,
  // not to the call sequence. Cheap proxy: two sessions, same single query
  // each, OR queries almost surely differ (k=3 fakes from 40 entries).
  XSearchProxy proxy(&engine_, authority_, options(0xabcd));
  std::vector<std::string> warm;
  for (std::size_t i = 0; i < 40; ++i) warm.push_back(log_.records()[i].text);
  proxy.warm_history(warm);

  std::vector<std::string> observed;
  engine_.set_observer(
      [&observed](std::string_view q) { observed.emplace_back(q); });
  ClientBroker alice(proxy, authority_, proxy.measurement(), 1);
  ClientBroker bob(proxy, authority_, proxy.measurement(), 2);
  const std::string query = log_.records()[300].text;
  ASSERT_TRUE(alice.search(query).is_ok());
  ASSERT_TRUE(bob.search(query).is_ok());
  engine_.set_observer(nullptr);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_NE(observed[0], observed[1]);
}

TEST_F(ParallelObfuscationTest, ManyThreadsManySessionsRaceFree) {
  // Saturation mode (no engine) so the test is pure obfuscation + channel
  // traffic: 6 threads × 2 sessions each × 40 queries against one proxy.
  // TSan verifies the lock-free hot path (per-session streams, shared-lock
  // history sampling, shared-lock ecall dispatch) is race-free.
  XSearchProxy::Options opt = options(0x1234);
  opt.contact_engine = false;
  XSearchProxy proxy(nullptr, authority_, opt);

  constexpr int kThreads = 6;
  constexpr int kQueries = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ClientBroker a(proxy, authority_, proxy.measurement(), 10 + 2 * t);
      ClientBroker b(proxy, authority_, proxy.measurement(), 11 + 2 * t);
      for (int i = 0; i < kQueries; ++i) {
        if (!a.search("thread " + std::to_string(t) + " q" + std::to_string(i))
                 .is_ok()) {
          ++failures;
        }
        if (!b.search("thread " + std::to_string(t) + " r" + std::to_string(i))
                 .is_ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(proxy.history_size(),
            static_cast<std::size_t>(kThreads) * kQueries * 2);
}

TEST(QueryHistoryConcurrency, ConcurrentAddAndSampleAreRaceFree) {
  // Writers slide the window while readers sample through the shared lock;
  // under TSan this pins the reader/writer restructuring of QueryHistory.
  // Both sides run a fixed amount of work (an open-ended reader loop would
  // starve the writers on a reader-preferring rwlock and stall the test).
  QueryHistory history(512);
  for (int i = 0; i < 128; ++i) history.add("seed " + std::to_string(i));

  std::atomic<std::uint64_t> sampled{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 4000; ++i) {
        history.add("writer " + std::to_string(w) + " " + std::to_string(i));
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(77 + r);
      for (int i = 0; i < 3000; ++i) {
        const auto fakes = history.sample(7, rng);
        sampled.fetch_add(fakes.size(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(sampled.load(), 0u);
  EXPECT_EQ(history.size(), 512u);  // window slid to capacity
  const auto snap = history.snapshot();
  EXPECT_EQ(snap.size(), 512u);
}

}  // namespace
}  // namespace xsearch::core
