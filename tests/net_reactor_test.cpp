// Reactor data-plane tests (ISSUE 10 acceptance suite).
//
// Exercises the epoll event loops and per-connection state machines
// directly, through a minimal frame-based echo protocol:
//  * incremental zero-copy parsing — FrameCursor fed one byte at a time,
//    and a live connection trickling a frame byte by byte;
//  * the write path — a multi-hundred-KiB reply draining to a deliberately
//    slow reader through partial vectored writes and EPOLLOUT;
//  * timer-wheel housekeeping — idle-TTL reaping that spares active
//    sessions;
//  * layered shedding — dispatch-queue overflow, requests whose v2 deadline
//    expired while queued, and EMFILE/ENFILE accept backoff (bounded retry
//    rate, typed counter, full recovery);
//  * wire chaos — a seeded client-side FaultPlan (drops, resets, garbage)
//    produces typed failures only, never hangs, and the server serves
//    cleanly once the plan is exhausted.
//
// Runs under ThreadSanitizer in CI (label: concurrency).
#include "net/reactor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/chaos.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/timer_wheel.hpp"
#include "test_util.hpp"

namespace xsearch::net {
namespace {

using testutil::eventually;

// --- echo protocol -----------------------------------------------------------

/// Shared environment for the gate-based tests: lets a test hold the
/// dispatch worker hostage and observe it entering.
struct EchoEnv {
  std::atomic<bool> gate_open{true};
  std::atomic<int> gate_entered{0};
};

/// Frame-based echo protocol over FrameCursor. Commands (kQuery payload):
///   echo:<data>   -> kQueryReply with <data>
///   inflate:<n>   -> kQueryReply with n 'x' bytes
///   gate          -> parks the worker until env->gate_open
class EchoProtocol final : public ConnectionProtocol {
 public:
  explicit EchoProtocol(std::shared_ptr<EchoEnv> env) : env_(std::move(env)) {}

  Action on_input(ByteSpan buffered) override {
    Action action;
    const FrameCursor::Step step = FrameCursor::parse(buffered);
    switch (step.state) {
      case FrameCursor::State::kError:
        action.close = true;
        return action;
      case FrameCursor::State::kNeedHeader:
      case FrameCursor::State::kNeedBody:
        action.need = step.need;
        action.mid_message = buffered.size() >= 4;
        return action;
      case FrameCursor::State::kFrame:
        break;
    }
    action.consumed = step.frame.frame_bytes;
    if (step.frame.type != FrameType::kQuery) {
      action.close = true;
      return action;
    }
    if (step.frame.v2) {
      action.deadline = Deadline::from_budget_millis(step.frame.budget_millis);
    }
    action.dispatch = true;
    action.job.assign(step.frame.payload.begin(), step.frame.payload.end());
    return action;
  }

  JobResult run_job(ByteSpan job, const Deadline& /*deadline*/) override {
    const std::string command(reinterpret_cast<const char*>(job.data()),
                              job.size());
    Bytes payload;
    if (command.rfind("echo:", 0) == 0) {
      payload = to_bytes(command.substr(5));
    } else if (command.rfind("inflate:", 0) == 0) {
      payload.assign(static_cast<std::size_t>(std::stoul(command.substr(8))),
                     'x');
    } else if (command == "gate") {
      env_->gate_entered.fetch_add(1, std::memory_order_release);
      while (!env_->gate_open.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      payload = to_bytes("gated");
    } else {
      JobResult result;
      result.reply.push_back(encode_shed_frame(invalid_argument(command)));
      result.close = true;
      return result;
    }
    JobResult result;
    result.reply.push_back(
        encode_frame_header(FrameType::kQueryReply, payload.size()).value());
    result.reply.push_back(std::move(payload));
    return result;
  }

  JobResult shed(const Status& status) override {
    JobResult result;
    result.reply.push_back(encode_shed_frame(status));
    result.close = true;
    return result;
  }

  [[nodiscard]] static Bytes encode_shed_frame(const Status& status) {
    Bytes payload = encode_error_status(status);
    Bytes frame =
        encode_frame_header(FrameType::kErrorStatus, payload.size()).value();
    append(frame, payload);
    return frame;
  }

 private:
  std::shared_ptr<EchoEnv> env_;
};

struct EchoServer {
  std::unique_ptr<Reactor> reactor;
  std::shared_ptr<EchoEnv> env;
};

EchoServer start_echo(Reactor::Options options = {}) {
  EchoServer server;
  server.env = std::make_shared<EchoEnv>();
  auto env = server.env;
  options.protocol_factory = [env] {
    return std::make_unique<EchoProtocol>(env);
  };
  options.encode_shed = [](const Status& status) {
    return EchoProtocol::encode_shed_frame(status);
  };
  auto listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.is_ok()) << listener.status().to_string();
  auto reactor = Reactor::start(std::move(listener).value(), std::move(options));
  EXPECT_TRUE(reactor.is_ok()) << reactor.status().to_string();
  server.reactor = std::move(reactor).value();
  return server;
}

Status send_query(TcpStream& stream, const std::string& command,
                  std::uint32_t budget_millis = 0) {
  FrameWriteOptions options;
  if (budget_millis > 0) {
    options.carry_budget = true;
    options.budget_millis = budget_millis;
  }
  return write_frame(stream, FrameType::kQuery, to_bytes(command), options);
}

Result<Frame> read_reply(TcpStream& stream, Nanos timeout = 5 * kSecond) {
  FrameReadOptions options;
  options.io_deadline = Deadline::after(timeout);
  return read_frame(stream, options);
}

// --- FrameCursor satellites --------------------------------------------------

TEST(FrameCursor, ParsesOneByteAtATime) {
  // v1 frame.
  Bytes wire = encode_frame_header(FrameType::kQuery, 11).value();
  append(wire, to_bytes("hello world"));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto step = FrameCursor::parse(ByteSpan(wire.data(), len));
    ASSERT_NE(step.state, FrameCursor::State::kFrame) << "at " << len;
    ASSERT_NE(step.state, FrameCursor::State::kError) << "at " << len;
    // The need hint never asks for less than what makes progress possible.
    EXPECT_GT(step.need, len);
  }
  const auto done = FrameCursor::parse(wire);
  ASSERT_EQ(done.state, FrameCursor::State::kFrame);
  EXPECT_EQ(done.frame.type, FrameType::kQuery);
  EXPECT_EQ(to_string(done.frame.payload), "hello world");
  EXPECT_FALSE(done.frame.v2);
  EXPECT_EQ(done.frame.frame_bytes, wire.size());

  // v2 frame: budget survives, payload view is identical.
  FrameWriteOptions v2;
  v2.carry_budget = true;
  v2.budget_millis = 1234;
  Bytes wire2 = encode_frame_header(FrameType::kQuery, 2, v2).value();
  append(wire2, to_bytes("hi"));
  for (std::size_t len = 0; len < wire2.size(); ++len) {
    const auto step = FrameCursor::parse(ByteSpan(wire2.data(), len));
    ASSERT_NE(step.state, FrameCursor::State::kFrame) << "at " << len;
    ASSERT_NE(step.state, FrameCursor::State::kError) << "at " << len;
  }
  const auto done2 = FrameCursor::parse(wire2);
  ASSERT_EQ(done2.state, FrameCursor::State::kFrame);
  EXPECT_TRUE(done2.frame.v2);
  EXPECT_EQ(done2.frame.budget_millis, 1234u);
  EXPECT_EQ(to_string(done2.frame.payload), "hi");

  // The payload is a view into the caller's buffer, not a copy.
  EXPECT_EQ(static_cast<const void*>(done.frame.payload.data()),
            static_cast<const void*>(wire.data() + 5));
}

TEST(FrameCursor, RejectsBadLengths) {
  // Zero length word: no frame is that small (type byte is mandatory).
  Bytes zero(4, 0);
  EXPECT_EQ(FrameCursor::parse(zero).state, FrameCursor::State::kError);

  // Oversized length word: rejected before any body is buffered.
  Bytes huge = {0x7f, 0xff, 0xff, 0xff};
  const auto step = FrameCursor::parse(huge);
  ASSERT_EQ(step.state, FrameCursor::State::kError);
  EXPECT_EQ(step.error.code(), StatusCode::kDataLoss);
}

// --- timer wheel -------------------------------------------------------------

TEST(TimerWheelTest, FiresAtTheBoundaryAfterDue_NotARevolutionLater) {
  // A deadline 6.3 ticks out must fire at the 7th boundary. Rounding the
  // slot index *down* would visit the slot one tick early, find the entry
  // not yet due, and strand it for a full revolution (256 ticks) — exactly
  // the failure mode idle-TTL reaping would hit on every live deadline.
  const Nanos tick = 10 * kMilli;
  TimerWheel wheel(/*now=*/0, tick, /*slots=*/256);
  const Nanos due = 6 * tick + 3 * kMilli;
  wheel.schedule(42, due);

  std::vector<TimerWheel::Entry> fired;
  for (Nanos now = tick; now < due; now += tick) {
    wheel.advance(now, fired);
    ASSERT_TRUE(fired.empty()) << "fired " << (long long)now - due << "ns early";
  }
  wheel.advance(7 * tick, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].key, 42u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, AlreadyDueEntryFiresOnNextAdvance) {
  const Nanos tick = 10 * kMilli;
  TimerWheel wheel(/*now=*/100 * tick, tick, /*slots=*/256);
  wheel.schedule(7, /*due=*/50 * tick);  // long past
  std::vector<TimerWheel::Entry> fired;
  wheel.advance(101 * tick, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].key, 7u);
}

// --- reactor: happy path and incremental delivery ----------------------------

TEST(ReactorTest, EchoesEndToEnd) {
  auto server = start_echo();
  auto client = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(client.is_ok());

  ASSERT_TRUE(send_query(client.value(), "echo:ping").is_ok());
  auto reply = read_reply(client.value());
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().type, FrameType::kQueryReply);
  EXPECT_EQ(to_string(reply.value().payload), "ping");

  // Several requests on one connection: the state machine loops.
  for (int i = 0; i < 5; ++i) {
    const std::string msg = "round " + std::to_string(i);
    ASSERT_TRUE(send_query(client.value(), "echo:" + msg).is_ok());
    auto round = read_reply(client.value());
    ASSERT_TRUE(round.is_ok());
    EXPECT_EQ(to_string(round.value().payload), msg);
  }
  server.reactor->stop();
}

TEST(ReactorTest, OneByteTrickleStillParses) {
  auto server = start_echo();
  auto client = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(client.is_ok());

  // Deliver the frame one byte at a time: every arrival re-enters the
  // incremental parser mid-header or mid-body.
  Bytes wire = encode_frame_header(FrameType::kQuery, 14).value();
  append(wire, to_bytes("echo:trickled"));
  wire.push_back('!');
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(client.value().write_all(ByteSpan(&byte, 1)).is_ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  auto reply = read_reply(client.value());
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(to_string(reply.value().payload), "trickled!");
  server.reactor->stop();
}

TEST(ReactorTest, LargeReplyDrainsToSlowReader) {
  auto server = start_echo();
  auto client = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(client.is_ok());

  // A 2 MiB reply cannot fit any loopback socket buffer: the reactor's
  // first vectored write is partial, EPOLLOUT gets armed, and the rest
  // drains as this (deliberately tardy) reader frees buffer space.
  constexpr std::size_t kReplySize = 2 * 1024 * 1024;
  ASSERT_TRUE(
      send_query(client.value(), "inflate:" + std::to_string(kReplySize))
          .is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto reply = read_reply(client.value(), 10 * kSecond);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_EQ(reply.value().payload.size(), kReplySize);
  EXPECT_EQ(reply.value().payload.front(), 'x');
  EXPECT_EQ(reply.value().payload.back(), 'x');

  // The connection survives the stall and keeps serving.
  ASSERT_TRUE(send_query(client.value(), "echo:after").is_ok());
  auto after = read_reply(client.value());
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(to_string(after.value().payload), "after");
  server.reactor->stop();
}

// --- reactor: timers ---------------------------------------------------------

TEST(ReactorTest, IdleTtlReapsOnlyIdleConnections) {
  Reactor::Options options;
  options.idle_ttl = 60 * kMilli;
  auto server = start_echo(std::move(options));

  auto idle = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(idle.is_ok());
  auto active = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(active.is_ok());
  ASSERT_TRUE(
      eventually([&] { return server.reactor->active_connections() == 2; }));

  // Keep one connection busy past several TTL windows; the other stays
  // silent and gets reaped.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < until) {
    ASSERT_TRUE(send_query(active.value(), "echo:alive").is_ok());
    auto reply = read_reply(active.value());
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }

  EXPECT_TRUE(eventually([&] { return server.reactor->idle_reaped() == 1; }))
      << "idle_reaped=" << server.reactor->idle_reaped()
      << " reaped=" << server.reactor->reaped()
      << " active=" << server.reactor->active_connections();
  EXPECT_EQ(server.reactor->active_connections(), 1u);
  // The reaped peer observes a closed connection.
  auto dead = read_reply(idle.value(), 200 * kMilli);
  EXPECT_FALSE(dead.is_ok());
  // The active one is still fine.
  ASSERT_TRUE(send_query(active.value(), "echo:still here").is_ok());
  auto still = read_reply(active.value());
  ASSERT_TRUE(still.is_ok());
  EXPECT_EQ(to_string(still.value().payload), "still here");
  server.reactor->stop();
}

// --- reactor: layered shedding -----------------------------------------------

TEST(ReactorTest, DeadlineExpiredWhileQueuedIsShedTyped) {
  Reactor::Options options;
  options.dispatch_workers = 1;
  auto server = start_echo(std::move(options));
  server.env->gate_open.store(false);

  // Park the only worker.
  auto holder = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(holder.is_ok());
  ASSERT_TRUE(send_query(holder.value(), "gate").is_ok());
  ASSERT_TRUE(eventually([&] { return server.env->gate_entered.load() == 1; }));

  // This request's own end-to-end budget (v2 frame) expires while it waits
  // for the worker.
  auto doomed = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(doomed.is_ok());
  ASSERT_TRUE(send_query(doomed.value(), "echo:too late",
                         /*budget_millis=*/20)
                  .is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server.env->gate_open.store(true);

  auto holder_reply = read_reply(holder.value());
  ASSERT_TRUE(holder_reply.is_ok());
  EXPECT_EQ(to_string(holder_reply.value().payload), "gated");

  auto doomed_reply = read_reply(doomed.value());
  ASSERT_TRUE(doomed_reply.is_ok()) << doomed_reply.status().to_string();
  ASSERT_EQ(doomed_reply.value().type, FrameType::kErrorStatus);
  const Status status = decode_error_status(doomed_reply.value().payload);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(eventually([&] { return server.reactor->deadline_expired() == 1; }));
  server.reactor->stop();
}

TEST(ReactorTest, DispatchQueueFullShedsTyped) {
  Reactor::Options options;
  options.dispatch_workers = 1;
  options.dispatch_queue = 1;
  auto server = start_echo(std::move(options));
  server.env->gate_open.store(false);

  // Worker parked, queue holding one request...
  auto holder = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(holder.is_ok());
  ASSERT_TRUE(send_query(holder.value(), "gate").is_ok());
  ASSERT_TRUE(eventually([&] { return server.env->gate_entered.load() == 1; }));
  auto queued = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(queued.is_ok());
  ASSERT_TRUE(send_query(queued.value(), "echo:waits").is_ok());
  // Give the loop a moment to park the second request in the queue, so the
  // third one is unambiguously the overflow.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // ...so a third request has nowhere to go: immediate typed OVERLOADED.
  auto shed = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(shed.is_ok());
  ASSERT_TRUE(eventually([&] { return server.reactor->active_connections() == 3; }));
  ASSERT_TRUE(send_query(shed.value(), "echo:overflow").is_ok());
  auto reply = read_reply(shed.value());
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_EQ(reply.value().type, FrameType::kErrorStatus);
  const Status status = decode_error_status(reply.value().payload);
  EXPECT_EQ(status.code(), StatusCode::kOverloaded);
  EXPECT_NE(status.message().find("queue full"), std::string::npos);
  EXPECT_GE(server.reactor->shed(), 1u);

  server.env->gate_open.store(true);
  auto held = read_reply(holder.value());
  ASSERT_TRUE(held.is_ok());
  auto waited = read_reply(queued.value());
  ASSERT_TRUE(waited.is_ok());
  EXPECT_EQ(to_string(waited.value().payload), "waits");
  server.reactor->stop();
}

TEST(ReactorTest, FdExhaustionBacksOffAndRecovers) {
  auto exhausted = std::make_shared<std::atomic<bool>>(true);
  auto accept_calls = std::make_shared<std::atomic<int>>(0);
  Reactor::Options options;
  options.accept_fault = [exhausted, accept_calls] {
    accept_calls->fetch_add(1, std::memory_order_relaxed);
    return exhausted->load(std::memory_order_relaxed) ? EMFILE : 0;
  };
  auto server = start_echo(std::move(options));

  // The kernel completes the handshake into the backlog even though the
  // server cannot accept it yet.
  auto client = TcpStream::connect("127.0.0.1", server.reactor->port());
  ASSERT_TRUE(client.is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // Backoff, not spin: with a ~20 ms pause per EMFILE, 250 ms allows only
  // a handful of retries. A spinning accept loop would log thousands.
  EXPECT_GE(server.reactor->fd_exhausted(), 1u);
  EXPECT_LE(accept_calls->load(), 40);

  // Descriptors come back: the parked connection gets accepted and served.
  exhausted->store(false);
  ASSERT_TRUE(eventually([&] { return server.reactor->active_connections() == 1; }));
  ASSERT_TRUE(send_query(client.value(), "echo:recovered").is_ok());
  auto reply = read_reply(client.value());
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(to_string(reply.value().payload), "recovered");
  server.reactor->stop();
}

// --- reactor: lifecycle ------------------------------------------------------

TEST(ReactorTest, StopIsIdempotentAndFreesThePort) {
  auto server = start_echo();
  const std::uint16_t port = server.reactor->port();
  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(send_query(client.value(), "echo:live").is_ok());
  ASSERT_TRUE(read_reply(client.value()).is_ok());

  server.reactor->stop();
  server.reactor->stop();  // idempotent
  EXPECT_EQ(server.reactor->active_connections(), 0u);
  EXPECT_EQ(server.reactor->accepted(), server.reactor->reaped());

  // The listener descriptor is released: the port rebinds immediately.
  auto rebound = TcpListener::bind(port);
  EXPECT_TRUE(rebound.is_ok()) << rebound.status().to_string();
}

// --- reactor: wire chaos -----------------------------------------------------

TEST(ReactorChaos, SeededFaultsAreTypedNeverHangsThenRecovers) {
  auto server = start_echo();
  for (const std::uint64_t seed : {7u, 21u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultPlan::Options plan_options;
    plan_options.seed = seed;
    plan_options.fault_ops = 10;
    // Lean into the hard faults; delays add nothing at this layer.
    plan_options.delay_p = 0.05;
    plan_options.partial_p = 0.25;
    plan_options.drop_p = 0.2;
    plan_options.reset_p = 0.2;
    plan_options.garbage_p = 0.2;
    auto plan = std::make_shared<FaultPlan>(plan_options);

    int calls = 0;
    while (!plan->exhausted() && calls < 100) {
      auto raw = TcpStream::connect("127.0.0.1", server.reactor->port());
      ASSERT_TRUE(raw.is_ok());
      ChaosSocket chaotic(std::move(raw).value(), plan);
      const std::string msg = "chaos " + std::to_string(calls);
      const auto started = std::chrono::steady_clock::now();
      const Status sent =
          write_frame(chaotic, FrameType::kQuery, to_bytes("echo:" + msg));
      if (sent.is_ok()) {
        FrameReadOptions read_options;
        read_options.io_deadline = Deadline::after(500 * kMilli);
        auto reply = read_frame(chaotic, read_options);
        if (reply.is_ok() && reply.value().type == FrameType::kQueryReply) {
          // Clean round trip: the echo must be intact.
          EXPECT_EQ(to_string(reply.value().payload), msg);
        } else if (!reply.is_ok()) {
          // Faulted round trip: typed failure, never success-shaped noise.
          EXPECT_NE(reply.status().code(), StatusCode::kOk);
        }
      } else {
        EXPECT_NE(sent.code(), StatusCode::kOk);
      }
      // Whatever the fault did, it did it promptly — no hangs.
      EXPECT_LT(std::chrono::steady_clock::now() - started,
                std::chrono::seconds(5));
      ++calls;
    }
    EXPECT_TRUE(plan->exhausted())
        << "only " << plan->faults_injected() << " faults in " << calls;

    // Recovery: the server shrugged off every mangled connection.
    auto clean = TcpStream::connect("127.0.0.1", server.reactor->port());
    ASSERT_TRUE(clean.is_ok());
    ASSERT_TRUE(send_query(clean.value(), "echo:recovered").is_ok());
    auto reply = read_reply(clean.value());
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
    EXPECT_EQ(to_string(reply.value().payload), "recovered");
  }
  server.reactor->stop();
}

}  // namespace
}  // namespace xsearch::net
