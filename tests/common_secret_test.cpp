// Tests for the Secret<N>/SecretBytes wrappers: zeroize-on-drop (inspected
// through placement-new storage), wiping moves, the deleted-operation
// surface, and constant-time equality.
#include "common/secret.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <concepts>
#include <new>
#include <ostream>
#include <type_traits>

#include "common/bytes.hpp"

namespace xsearch {
namespace {

using Key = Secret<32>;

Key::Raw patterned_raw(std::uint8_t fill = 0xab) {
  Key::Raw raw{};
  raw.fill(fill);
  return raw;
}

bool all_zero(const unsigned char* p, std::size_t n) {
  return std::all_of(p, p + n, [](unsigned char b) { return b == 0; });
}

// ---- compile-time surface ---------------------------------------------------

// Bytes never silently become secrets, and secrets never compare or print.
static_assert(!std::is_convertible_v<Key::Raw, Key>);
static_assert(!std::is_convertible_v<Bytes, SecretBytes>);
static_assert(!std::equality_comparable<Key>);
static_assert(!std::equality_comparable<SecretBytes>);

template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};
static_assert(!is_streamable<Key>::value);
static_assert(!is_streamable<SecretBytes>::value);

// ---- zeroize on destroy -----------------------------------------------------

TEST(Secret, DestructionWipesStorage) {
  // Secret<N>'s only state is the key array, so after an in-place destructor
  // call the object's storage must read back as zeroes — destruction may not
  // leave key material in the dead stack frame.
  alignas(Key) unsigned char storage[sizeof(Key)];
  Key* key = new (storage) Key(patterned_raw());
  ASSERT_TRUE(constant_time_equal(*key, ByteSpan(patterned_raw())));
  key->~Key();
  EXPECT_TRUE(all_zero(storage, sizeof storage));
}

TEST(Secret, MoveWipesTheSource) {
  alignas(Key) unsigned char storage[sizeof(Key)];
  Key* source = new (storage) Key(patterned_raw(0x5c));
  const Key stolen(std::move(*source));
  EXPECT_TRUE(all_zero(storage, sizeof storage));
  EXPECT_TRUE(constant_time_equal(stolen, ByteSpan(patterned_raw(0x5c))));
  source->~Key();
}

TEST(Secret, MoveAssignmentWipesTheSource) {
  alignas(Key) unsigned char storage[sizeof(Key)];
  Key* source = new (storage) Key(patterned_raw(0x77));
  Key target;
  target = std::move(*source);
  EXPECT_TRUE(all_zero(storage, sizeof storage));
  EXPECT_TRUE(constant_time_equal(target, ByteSpan(patterned_raw(0x77))));
  source->~Key();
}

TEST(Secret, AbsorbWipesTheStagingBuffer) {
  Key::Raw staging = patterned_raw(0x42);
  const Key key = Key::absorb(staging);
  EXPECT_TRUE(all_zero(staging.data(), staging.size()));
  EXPECT_TRUE(constant_time_equal(key, ByteSpan(patterned_raw(0x42))));
}

TEST(Secret, DefaultConstructedIsAllZero) {
  const Key key;
  EXPECT_TRUE(constant_time_equal(key, ByteSpan(Key::Raw{})));
}

// ---- constant-time equality -------------------------------------------------

TEST(Secret, ConstantTimeEqualityIsTheOnlyEquality) {
  const Key a(patterned_raw(1));
  const Key b(patterned_raw(1));
  const Key c(patterned_raw(2));
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
}

TEST(Secret, ExposeReturnsTheBytes) {
  const Key key(patterned_raw(0x99));
  const auto view = key.expose(SecretSink::kTestVector);
  ASSERT_EQ(view.size(), 32u);
  EXPECT_EQ(view[0], 0x99);
  EXPECT_EQ(view[31], 0x99);
}

// ---- SecretBytes ------------------------------------------------------------

TEST(SecretBytes, MoveFromLeavesSourceEmpty) {
  SecretBytes source(Bytes(16, 0xee));
  const SecretBytes sink(std::move(source));
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(sink.size(), 16u);
}

TEST(SecretBytes, MoveAssignWipesOwnBufferFirst) {
  SecretBytes target(Bytes(8, 0x11));
  SecretBytes source(Bytes(4, 0x22));
  target = std::move(source);
  EXPECT_EQ(target.size(), 4u);
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(constant_time_equal(target, Bytes(4, 0x22)));
}

TEST(SecretBytes, SliceCutsASecretWithoutExposure) {
  Bytes material(64, 0);
  for (std::size_t i = 0; i < material.size(); ++i) {
    material[i] = static_cast<std::uint8_t>(i);
  }
  const SecretBytes okm{Bytes(material)};
  const Secret<32> first = okm.slice<32>(0);
  const Secret<32> second = okm.slice<32>(32);
  EXPECT_TRUE(constant_time_equal(first, ByteSpan(material.data(), 32)));
  EXPECT_TRUE(constant_time_equal(second, ByteSpan(material.data() + 32, 32)));
  EXPECT_FALSE(constant_time_equal(first, second));
}

TEST(SecretBytes, ConstantTimeEquality) {
  const SecretBytes a(Bytes(10, 7));
  const SecretBytes b(Bytes(10, 7));
  const SecretBytes c(Bytes(10, 8));
  const SecretBytes shorter(Bytes(9, 7));
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, shorter));
}

// ---- secure_wipe itself -----------------------------------------------------

TEST(SecureWipe, ZeroesTheBuffer) {
  Bytes buffer(33, 0xf0);
  secure_wipe(buffer);
  EXPECT_TRUE(all_zero(buffer.data(), buffer.size()));
}

TEST(SecureWipe, ToleratesNullAndEmpty) {
  secure_wipe(nullptr, 0);
  Bytes empty;
  secure_wipe(empty);  // no crash
}

}  // namespace
}  // namespace xsearch
