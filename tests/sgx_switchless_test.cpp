// Switchless (exitless) request path tests: the job ring's MPMC protocol
// under wrap-around, the fallback state machine (ring full, workers paused,
// pickup patience), deadline shedding before pickup, shutdown while workers
// poll, and the headline property — ecall transitions grow sub-linearly in
// requests served.
//
// Run under ThreadSanitizer in CI (label: concurrency).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hpp"
#include "sgx/enclave.hpp"
#include "sgx/job_ring.hpp"

namespace xsearch::sgx {
namespace {

EnclaveRuntime::Config test_config() {
  EnclaveRuntime::Config config;
  config.code_identity = to_bytes("switchless-test-enclave v1");
  return config;
}

// Worker threads enter their long-running run_workers ecall asynchronously
// after start_switchless returns; tests that count transitions must wait for
// those entries to land before taking a baseline.
void wait_for_ecall_count(const EnclaveRuntime& enclave, std::uint64_t target) {
  for (int i = 0; i < 2000 && enclave.transition_stats().ecalls < target; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(enclave.transition_stats().ecalls, target);
}

// Echo handler tagging its input so results are attributable per job.
EnclaveRuntime::Handler echo_handler(std::atomic<std::uint64_t>* executed) {
  return [executed](ByteSpan in) -> Result<Bytes> {
    executed->fetch_add(1, std::memory_order_relaxed);
    Bytes out = to_bytes("echo:");
    out.insert(out.end(), in.begin(), in.end());
    return out;
  };
}

// --- JobRing protocol --------------------------------------------------------

TEST(JobRing, DepthRoundsUpToPowerOfTwo) {
  EXPECT_EQ(JobRing(1).depth(), 1u);
  EXPECT_EQ(JobRing(4).depth(), 4u);
  EXPECT_EQ(JobRing(5).depth(), 8u);
  EXPECT_EQ(JobRing(64).depth(), 64u);
}

TEST(JobRing, WrapAroundPreservesPayloadAndOrder) {
  // A depth-4 ring driven for many laps: every slot is reused repeatedly
  // and the sequence protocol must keep FIFO order and payload integrity.
  JobRing ring(4);
  std::size_t produced = 0;
  std::size_t consumed = 0;
  for (int lap = 0; lap < 8; ++lap) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_enqueue(
          EcallId::kRequest, to_bytes("job " + std::to_string(produced)),
          Deadline(), std::make_shared<JobCompletion>()));
      ++produced;
    }
    for (int i = 0; i < 3; ++i) {
      Job job;
      ASSERT_TRUE(ring.try_dequeue(job));
      EXPECT_EQ(job.input, to_bytes("job " + std::to_string(consumed)));
      EXPECT_EQ(job.id, EcallId::kRequest);
      ASSERT_NE(job.completion, nullptr);
      ++consumed;
    }
  }
  Job job;
  EXPECT_FALSE(ring.try_dequeue(job));  // drained
}

TEST(JobRing, FullRingRejectsUntilConsumed) {
  JobRing ring(2);
  ASSERT_TRUE(ring.try_enqueue(EcallId::kRequest, to_bytes("a"), Deadline(),
                               std::make_shared<JobCompletion>()));
  ASSERT_TRUE(ring.try_enqueue(EcallId::kRequest, to_bytes("b"), Deadline(),
                               std::make_shared<JobCompletion>()));
  EXPECT_FALSE(ring.try_enqueue(EcallId::kRequest, to_bytes("c"), Deadline(),
                                std::make_shared<JobCompletion>()));
  Job job;
  ASSERT_TRUE(ring.try_dequeue(job));
  EXPECT_TRUE(ring.try_enqueue(EcallId::kRequest, to_bytes("c"), Deadline(),
                               std::make_shared<JobCompletion>()));
}

// --- Exitless submits --------------------------------------------------------

TEST(Switchless, SubmitsRideRingAndEcallsGrowSubLinearly) {
  EnclaveRuntime enclave(test_config());
  std::atomic<std::uint64_t> executed{0};
  enclave.register_ecall(EcallId::kRequest, echo_handler(&executed));

  SwitchlessOptions options;
  options.ring_depth = 8;
  options.workers = 2;
  options.pickup_patience = kSecond;  // workers are live: never fall back
  const auto at_start = enclave.transition_stats();
  enclave.start_switchless(options);
  // Both workers enter the enclave exactly once, through run_workers.
  wait_for_ecall_count(enclave, at_start.ecalls + options.workers);
  const auto before = enclave.transition_stats();

  constexpr int kJobs = 100;
  for (int i = 0; i < kJobs; ++i) {
    auto result =
        enclave.submit(EcallId::kRequest, to_bytes(std::to_string(i)));
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(std::move(result).value(),
              to_bytes("echo:" + std::to_string(i)));
  }

  // The headline property: 100 requests, ZERO new transitions — the only
  // ecalls ever charged to the switchless path are the long-running
  // run_workers entries counted at start_switchless.
  const auto after = enclave.transition_stats();
  EXPECT_EQ(after.ecalls - before.ecalls, 0u);
  EXPECT_EQ(executed.load(), static_cast<std::uint64_t>(kJobs));
  const auto ring = enclave.ring_stats();
  EXPECT_EQ(ring.jobs_switchless, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(ring.fallback_ecalls, 0u);
  enclave.stop_switchless();
}

TEST(Switchless, ConcurrentSubmittersAllComplete) {
  EnclaveRuntime enclave(test_config());
  std::atomic<std::uint64_t> executed{0};
  enclave.register_ecall(EcallId::kRequest, echo_handler(&executed));

  SwitchlessOptions options;
  options.ring_depth = 4;  // small on purpose: exercise backpressure too
  options.workers = 2;
  enclave.start_switchless(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&enclave, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string tag = std::to_string(t) + ":" + std::to_string(i);
        auto result = enclave.submit(EcallId::kRequest, to_bytes(tag));
        if (!result.is_ok() ||
            std::move(result).value() != to_bytes("echo:" + tag)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  enclave.stop_switchless();

  EXPECT_EQ(failures.load(), 0);
  // Every request executed exactly once, whether it rode the ring or fell
  // back under contention.
  EXPECT_EQ(executed.load(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto ring = enclave.ring_stats();
  EXPECT_EQ(ring.jobs_switchless + ring.fallback_ecalls,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Switchless, PausedWorkersDegradeToFallbackNotHang) {
  EnclaveRuntime enclave(test_config());
  std::atomic<std::uint64_t> executed{0};
  enclave.register_ecall(EcallId::kRequest, echo_handler(&executed));

  SwitchlessOptions options;
  options.ring_depth = 4;
  options.workers = 1;
  options.pickup_patience = kMilli;  // give up on the ring quickly
  const auto at_start = enclave.transition_stats();
  enclave.start_switchless(options);
  wait_for_ecall_count(enclave, at_start.ecalls + options.workers);
  enclave.pause_switchless(true);

  // Paused workers never drain the ring: the first submits park their jobs
  // there (cancelled via pickup patience), later ones find it full. ALL of
  // them must still answer correctly through the plain-ecall fallback.
  const auto before = enclave.transition_stats();
  constexpr int kJobs = 6;
  for (int i = 0; i < kJobs; ++i) {
    auto result =
        enclave.submit(EcallId::kRequest, to_bytes(std::to_string(i)));
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(std::move(result).value(),
              to_bytes("echo:" + std::to_string(i)));
  }
  const auto after = enclave.transition_stats();
  const auto ring = enclave.ring_stats();
  EXPECT_EQ(ring.fallback_ecalls, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(after.ecalls - before.ecalls, static_cast<std::uint64_t>(kJobs));
  EXPECT_GE(ring.ring_full_rejects, 1u);  // depth 4 < 6 abandoned jobs
  EXPECT_EQ(ring.jobs_switchless, 0u);

  // Unpause: the worker wakes, drops the cancelled carcasses, and fresh
  // submits ride the ring again.
  enclave.pause_switchless(false);
  auto result = enclave.submit(EcallId::kRequest, to_bytes("revived"),
                               Deadline::after(5 * kSecond));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  enclave.stop_switchless();
  EXPECT_EQ(executed.load(), static_cast<std::uint64_t>(kJobs) + 1);
}

TEST(Switchless, DeadlineExpiredJobIsShedBeforePickup) {
  EnclaveRuntime enclave(test_config());
  std::atomic<std::uint64_t> executed{0};
  enclave.register_ecall(EcallId::kRequest, echo_handler(&executed));

  SwitchlessOptions options;
  options.workers = 1;
  options.pickup_patience = kSecond;  // patience must NOT mask the deadline
  enclave.start_switchless(options);
  enclave.pause_switchless(true);  // nobody picks the job up

  // Already-expired deadline: shed at the front door, never enqueued.
  auto pre = Deadline::after(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto shed = enclave.submit(EcallId::kRequest, to_bytes("stale"), pre);
  EXPECT_EQ(shed.status().code(), StatusCode::kDeadlineExceeded);

  // Deadline expiring while the job sits unpicked in the ring: the
  // submitter cancels it and reports DEADLINE_EXCEEDED — it does not fall
  // back (the budget is gone either way) and the handler never runs.
  auto pending = enclave.submit(EcallId::kRequest, to_bytes("doomed"),
                                Deadline::after(2 * kMilli));
  EXPECT_EQ(pending.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executed.load(), 0u);
  EXPECT_EQ(enclave.ring_stats().jobs_switchless, 0u);
  enclave.stop_switchless();
}

TEST(Switchless, StopWhileWorkersPollDoesNotHang) {
  EnclaveRuntime enclave(test_config());
  enclave.register_ecall(EcallId::kRequest,
                         [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  SwitchlessOptions options;
  options.workers = 4;
  enclave.start_switchless(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(enclave.submit(EcallId::kRequest, to_bytes("x")).is_ok());
  }
  enclave.stop_switchless();  // joins all 4 run_workers ecalls
  EXPECT_FALSE(enclave.switchless_running());
  enclave.stop_switchless();  // idempotent

  // After stop, submits still answer — via the fallback ecall.
  const auto before = enclave.transition_stats();
  ASSERT_TRUE(enclave.submit(EcallId::kRequest, to_bytes("late")).is_ok());
  EXPECT_EQ(enclave.transition_stats().ecalls - before.ecalls, 1u);
}

TEST(Switchless, DestructorJoinsRunningWorkers) {
  // No explicit stop_switchless: the runtime's destructor must join the
  // parked workers instead of destroying the CondVar under them.
  EnclaveRuntime enclave(test_config());
  enclave.register_ecall(EcallId::kRequest,
                         [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  SwitchlessOptions options;
  options.workers = 2;
  enclave.start_switchless(options);
  ASSERT_TRUE(enclave.submit(EcallId::kRequest, to_bytes("x")).is_ok());
}

TEST(Switchless, CrashWakesWorkersAndFailsSubmits) {
  EnclaveRuntime enclave(test_config());
  enclave.register_ecall(EcallId::kRequest,
                         [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  SwitchlessOptions options;
  options.workers = 2;
  enclave.start_switchless(options);
  enclave.crash();
  EXPECT_EQ(enclave.submit(EcallId::kRequest, to_bytes("x")).status().code(),
            StatusCode::kUnavailable);
  enclave.stop_switchless();  // workers already exited; join is immediate
}

TEST(Switchless, WorkersParkWhenIdleAndWakeOnSubmit) {
  EnclaveRuntime enclave(test_config());
  enclave.register_ecall(EcallId::kRequest,
                         [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
  SwitchlessOptions options;
  options.workers = 1;
  options.spin_budget = 1;  // park almost immediately when idle
  // Long patience: on a loaded box a short window could fall back before
  // the parked worker is scheduled, and then no wakeup would be counted.
  options.pickup_patience = 5 * kSecond;
  enclave.start_switchless(options);

  // Wait (bounded) for the idle worker to park at least once, then prove a
  // submit wakes it and still completes switchlessly.
  for (int i = 0; i < 200 && enclave.ring_stats().worker_parks == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(enclave.ring_stats().worker_parks, 1u);
  ASSERT_TRUE(enclave
                  .submit(EcallId::kRequest, to_bytes("wake"),
                          Deadline::after(5 * kSecond))
                  .is_ok());
  EXPECT_GE(enclave.ring_stats().worker_wakeups, 1u);
  enclave.stop_switchless();
}

}  // namespace
}  // namespace xsearch::sgx
