// The unified-API contract, asserted identically across all five
// mechanisms: session lifecycle, sync search, the asynchronous batch path,
// introspection, and error paths. Value-parameterized on the registered
// mechanism name, so a sixth mechanism joins the suite by adding its name.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "api/registry.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"

namespace xsearch::api {
namespace {

constexpr const char* kMechanisms[] = {"direct", "tmn", "tor", "peas",
                                       "xsearch"};

/// One shared world for the whole suite: a log, a corpus and an engine.
class World {
 public:
  World() {
    dataset::SyntheticLogConfig config;
    config.num_users = 30;
    config.total_queries = 2'000;
    config.vocab_size = 1'200;
    config.num_topics = 12;
    log_ = dataset::generate_synthetic_log(config);
    corpus_ = std::make_unique<engine::Corpus>(
        log_, engine::CorpusConfig{.num_documents = 600});
    engine_ = std::make_unique<engine::SearchEngine>(*corpus_);
  }

  [[nodiscard]] Backend backend() const {
    Backend backend;
    backend.engine = engine_.get();
    backend.fake_source = &log_;
    return backend;
  }

  [[nodiscard]] const dataset::QueryLog& log() const { return log_; }

  static const World& instance() {
    static const World world;
    return world;
  }

 private:
  dataset::QueryLog log_;
  std::unique_ptr<engine::Corpus> corpus_;
  std::unique_ptr<engine::SearchEngine> engine_;
};

class ApiClientTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] static ClientConfig small_config() {
    ClientConfig config;
    config.k = 2;
    config.top_k = 10;
    config.seed = 42;
    config.history_capacity = 10'000;
    config.batch_workers = 2;
    return config;
  }

  [[nodiscard]] ClientPtr make(const ClientConfig& config = small_config()) {
    auto client = make_client(GetParam(), World::instance().backend(), config);
    EXPECT_TRUE(client.is_ok()) << client.status().to_string();
    ClientPtr ptr = client.is_ok() ? std::move(client).value() : nullptr;
    if (ptr) {
      // Obfuscating mechanisms need decoy material before searching.
      std::vector<std::string> warm;
      for (std::size_t i = 0; i < 20; ++i) {
        warm.push_back(World::instance().log().records()[i * 17].text);
      }
      EXPECT_TRUE(ptr->prime(warm).is_ok());
    }
    return ptr;
  }

  [[nodiscard]] static std::string a_query(std::size_t i = 100) {
    return World::instance().log().records()[i].text;
  }
};

TEST_P(ApiClientTest, RegistryBuildsTheMechanism) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->privacy_properties().mechanism, GetParam());
}

TEST_P(ApiClientTest, ConnectIsIdempotentAndCloseDisconnects) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->connected());
  ASSERT_TRUE(client->connect().is_ok());
  EXPECT_TRUE(client->connected());
  ASSERT_TRUE(client->connect().is_ok());
  EXPECT_TRUE(client->connected());
  client->close();
  EXPECT_FALSE(client->connected());
  // A closed client can be revived.
  ASSERT_TRUE(client->connect().is_ok());
  EXPECT_TRUE(client->connected());
}

TEST_P(ApiClientTest, SearchLazilyConnectsAndReturnsResults) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  const auto results = client->search(a_query());
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_TRUE(client->connected());
  EXPECT_FALSE(results.value().empty());
  EXPECT_EQ(client->stats().searches, 1u);
  EXPECT_EQ(client->stats().failures, 0u);
}

TEST_P(ApiClientTest, ResultBudgetIsBounded) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  const ClientConfig config = small_config();
  const auto results = client->search(a_query(), 5);
  ASSERT_TRUE(results.is_ok());
  // Mechanisms answering through an OR query may merge up to (k+1) result
  // sets; no mechanism may exceed that.
  EXPECT_LE(results.value().size(), 5 * (config.k + 1));
}

TEST_P(ApiClientTest, BatchSubmitWaitCompletesEveryTicket) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  constexpr std::size_t kBatch = 12;
  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const Ticket t = client->submit(a_query(200 + i * 3));
    ASSERT_NE(t, kInvalidTicket);
    tickets.push_back(t);
  }
  for (const Ticket t : tickets) {
    const SearchOutcome outcome = client->wait(t);
    EXPECT_EQ(outcome.ticket, t);
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_string();
    EXPECT_FALSE(outcome.results.empty());
    EXPECT_GE(outcome.latency, 0);
  }
  const auto stats = client->stats();
  EXPECT_EQ(stats.submitted, kBatch);
  EXPECT_EQ(stats.completed, kBatch);
}

TEST_P(ApiClientTest, BatchPollEventuallyDeliversEachOutcomeOnce) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  const Ticket t = client->submit(a_query(300));
  ASSERT_NE(t, kInvalidTicket);
  client->drain();
  const auto outcome = client->poll(t);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->status.is_ok());
  // Outcomes are delivered exactly once; a second poll reports NOT_FOUND.
  const auto again = client->poll(t);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->status.code(), StatusCode::kNotFound);
}

TEST_P(ApiClientTest, BatchCallbackFires) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  std::atomic<int> fired{0};
  client->submit(a_query(123), 0, [&](SearchOutcome outcome) {
    EXPECT_TRUE(outcome.status.is_ok());
    fired.fetch_add(1);
  });
  client->drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST_P(ApiClientTest, PollOnUnknownTicketReportsNotFound) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  const auto outcome = client->poll(777'777);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(client->wait(777'777).status.code(), StatusCode::kNotFound);
}

TEST_P(ApiClientTest, SaturationModeAnswersWithoutAnEngine) {
  ClientConfig config = small_config();
  config.contact_engine = false;
  Backend backend;  // no engine at all
  backend.fake_source = &World::instance().log();
  auto client = make_client(GetParam(), backend, config);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  const auto results = client.value()->search(a_query());
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_TRUE(results.value().empty());
}

TEST_P(ApiClientTest, PrivacyPropertiesAreInternallyConsistent) {
  const auto client = make();
  ASSERT_NE(client, nullptr);
  const auto props = client->privacy_properties();
  EXPECT_FALSE(props.trust_assumption.empty());
  if (props.mechanism == "xsearch" || props.mechanism == "peas") {
    EXPECT_FALSE(props.query_exposed);
    EXPECT_EQ(props.k, small_config().k);
  }
  if (props.mechanism == "direct" || props.mechanism == "tmn") {
    EXPECT_TRUE(props.identity_exposed);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ApiClientTest,
                         ::testing::ValuesIn(kMechanisms),
                         [](const auto& info) { return std::string(info.param); });

// --- registry + config error paths (not mechanism-parameterized) -----------

TEST(ApiRegistryTest, UnknownMechanismIsNotFound) {
  const auto client = make_client("carrier-pigeon", World::instance().backend(),
                                  ClientConfig{});
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kNotFound);
}

TEST(ApiRegistryTest, ListsAllBuiltinMechanisms) {
  const auto names = MechanismRegistry::instance().mechanism_names();
  for (const char* name : kMechanisms) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(ApiRegistryTest, NullEngineRequiresSaturationMode) {
  Backend backend;
  backend.fake_source = &World::instance().log();
  ClientConfig config;  // contact_engine defaults to true
  const auto client = make_client("direct", backend, config);
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApiRegistryTest, XSearchRejectsDegenerateOptions) {
  for (const auto mutate :
       std::vector<std::function<void(ClientConfig&)>>{
           [](ClientConfig& c) { c.k = 0; },
           [](ClientConfig& c) { c.history_capacity = 0; },
           [](ClientConfig& c) { c.top_k = 0; }}) {
    ClientConfig config;
    mutate(config);
    const auto client =
        make_client("xsearch", World::instance().backend(), config);
    ASSERT_FALSE(client.is_ok());
    EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument)
        << client.status().to_string();
  }
}

TEST(ApiRegistryTest, PeasRequiresAFakeSource) {
  Backend backend = World::instance().backend();
  backend.fake_source = nullptr;
  const auto client = make_client("peas", backend, ClientConfig{});
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiRegistryTest, DuplicateRegistrationIsRejected) {
  auto& registry = MechanismRegistry::instance();
  const auto status = registry.register_mechanism(
      "direct", [](const Backend&, const ClientConfig&) -> Result<ClientPtr> {
        return not_found("never called");
      });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace xsearch::api
