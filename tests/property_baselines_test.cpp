// Parameterized property tests for the baselines: Tor circuits of varying
// length and PEAS across the k grid.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/peas/peas.hpp"
#include "baselines/tor/tor.hpp"
#include "dataset/synthetic.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::baselines {
namespace {

// ---- Tor with 1..5 hops ------------------------------------------------------

class TorHops : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TorHops, OnionLayerCountMatchesPathLength) {
  const std::size_t hops = GetParam();
  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::vector<tor::TorRelay*> path;
  for (std::size_t i = 0; i < hops; ++i) {
    relays.push_back(std::make_unique<tor::TorRelay>(i + 1));
    path.push_back(relays.back().get());
  }
  tor::TorCircuit circuit(7, path, 42);
  const Bytes payload = to_bytes("payload");
  Bytes cell = circuit.build_onion(payload);
  EXPECT_EQ(cell.size(), payload.size() + hops * crypto::kAeadTagSize);

  // Peeling in path order recovers the payload exactly at the exit.
  for (std::size_t i = 0; i < hops; ++i) {
    auto peeled = path[i]->peel(7, cell);
    ASSERT_TRUE(peeled.is_ok()) << "hop " << i;
    cell = std::move(peeled).value();
  }
  EXPECT_EQ(cell, payload);
}

TEST_P(TorHops, ResponsePathInverts) {
  const std::size_t hops = GetParam();
  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::vector<tor::TorRelay*> path;
  for (std::size_t i = 0; i < hops; ++i) {
    relays.push_back(std::make_unique<tor::TorRelay>(100 + i));
    path.push_back(relays.back().get());
  }
  tor::TorCircuit circuit(9, path, 43);
  const Bytes payload = to_bytes("response payload");
  Bytes cell(payload);
  for (std::size_t i = hops; i-- > 0;) {
    auto wrapped = path[i]->wrap(9, cell);
    ASSERT_TRUE(wrapped.is_ok());
    cell = std::move(wrapped).value();
  }
  const auto plain = circuit.unwrap_response(cell);
  ASSERT_TRUE(plain.is_ok());
  EXPECT_EQ(plain.value(), payload);
}

TEST_P(TorHops, MiddleRelayLearnsNothingAboutPayload) {
  const std::size_t hops = GetParam();
  if (hops < 2) GTEST_SKIP() << "needs at least 2 hops";
  std::vector<std::unique_ptr<tor::TorRelay>> relays;
  std::vector<tor::TorRelay*> path;
  for (std::size_t i = 0; i < hops; ++i) {
    relays.push_back(std::make_unique<tor::TorRelay>(200 + i));
    path.push_back(relays.back().get());
  }
  tor::TorCircuit circuit(11, path, 44);
  const std::string secret = "very secret query text";
  Bytes cell = circuit.build_onion(to_bytes(secret));
  // After peeling only the entry layer, the secret must not be visible.
  auto peeled = path[0]->peel(11, cell);
  ASSERT_TRUE(peeled.is_ok());
  const std::string visible = to_string(peeled.value());
  EXPECT_EQ(visible.find(secret), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(PathLengths, TorHops, ::testing::Values<std::size_t>(1, 2, 3, 5));

// ---- PEAS across k -------------------------------------------------------------

class PeasK : public ::testing::TestWithParam<std::size_t> {
 protected:
  static const dataset::QueryLog& log() {
    static const dataset::QueryLog kLog = [] {
      dataset::SyntheticLogConfig config;
      config.num_users = 20;
      config.total_queries = 1'500;
      config.vocab_size = 800;
      config.num_topics = 10;
      config.words_per_topic = 60;
      return dataset::generate_synthetic_log(config);
    }();
    return kLog;
  }
};

TEST_P(PeasK, ProtectProducesExactlyKPlusOne) {
  const std::size_t k = GetParam();
  peas::FakeQueryGenerator fakes(log());
  peas::PeasIssuer issuer(nullptr, 7);
  peas::PeasReceiver receiver(issuer);
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, k, 42);

  for (int trial = 0; trial < 10; ++trial) {
    const auto subs = client.protect("real query " + std::to_string(trial));
    EXPECT_EQ(subs.size(), k + 1);
    EXPECT_EQ(std::count(subs.begin(), subs.end(),
                         "real query " + std::to_string(trial)),
              1);
  }
}

TEST_P(PeasK, FakesAreNotTheOriginal) {
  const std::size_t k = GetParam();
  peas::FakeQueryGenerator fakes(log());
  peas::PeasIssuer issuer(nullptr, 7);
  peas::PeasReceiver receiver(issuer);
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, k, 43);
  const std::string original = "zzqq unique original zzqq";
  const auto subs = client.protect(original);
  std::size_t original_count = 0;
  for (const auto& s : subs) original_count += (s == original);
  EXPECT_EQ(original_count, 1u);
}

TEST_P(PeasK, EndToEndAtEveryK) {
  const std::size_t k = GetParam();
  peas::FakeQueryGenerator fakes(log());
  peas::PeasIssuer issuer(nullptr, 7);
  peas::PeasReceiver receiver(issuer);
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, k, 44);
  const auto results = client.search(log().records()[3].text);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
}

INSTANTIATE_TEST_SUITE_P(Ks, PeasK, ::testing::Values<std::size_t>(0, 1, 3, 7));

}  // namespace
}  // namespace xsearch::baselines
