#include "crypto/secure_channel.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/random.hpp"

namespace xsearch::crypto {
namespace {

struct ChannelPair {
  SecureChannel client;
  SecureChannel server;
};

ChannelPair make_pair(std::uint8_t seed = 1) {
  ChaChaKey::Raw raw{};
  raw.fill(seed);
  SecureRandom rng(ChaChaKey::absorb(raw));

  const auto server_static = x25519_keypair_from_seed(rng.key());
  const auto client_eph = x25519_keypair_from_seed(rng.key());
  const auto server_eph = x25519_keypair_from_seed(rng.key());

  return ChannelPair{
      SecureChannel::initiator(client_eph, server_static.public_key,
                               server_eph.public_key),
      SecureChannel::responder(server_static, server_eph, client_eph.public_key)};
}

TEST(SecureChannel, SessionIdsAgree) {
  auto [client, server] = make_pair();
  EXPECT_EQ(client.session_id(), server.session_id());
  EXPECT_EQ(client.session_id().size(), 32u);
}

TEST(SecureChannel, ClientToServerRoundTrip) {
  auto [client, server] = make_pair();
  const Bytes msg = to_bytes("query: chronic back pain treatment");
  const Bytes record = client.seal(msg);
  EXPECT_NE(record, msg);
  const auto opened = server.open(record);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value(), msg);
}

TEST(SecureChannel, ServerToClientRoundTrip) {
  auto [client, server] = make_pair();
  const Bytes msg = to_bytes("results: [...]");
  const auto opened = client.open(server.seal(msg));
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(opened.value(), msg);
}

TEST(SecureChannel, ManySequentialRecords) {
  auto [client, server] = make_pair();
  for (int i = 0; i < 100; ++i) {
    const Bytes msg = to_bytes("msg " + std::to_string(i));
    const auto opened = server.open(client.seal(msg));
    ASSERT_TRUE(opened.is_ok()) << "record " << i;
    EXPECT_EQ(opened.value(), msg);
  }
}

TEST(SecureChannel, TamperedRecordRejected) {
  auto [client, server] = make_pair();
  Bytes record = client.seal(to_bytes("hello"));
  record[record.size() / 2] ^= 0xff;
  const auto opened = server.open(record);
  EXPECT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureChannel, ReplayRejected) {
  auto [client, server] = make_pair();
  const Bytes record = client.seal(to_bytes("pay $100"));
  ASSERT_TRUE(server.open(record).is_ok());
  // Same record again: the receive counter advanced, so the nonce differs.
  EXPECT_FALSE(server.open(record).is_ok());
}

TEST(SecureChannel, ReorderRejected) {
  auto [client, server] = make_pair();
  const Bytes r1 = client.seal(to_bytes("first"));
  const Bytes r2 = client.seal(to_bytes("second"));
  EXPECT_FALSE(server.open(r2).is_ok());  // out of order
  EXPECT_TRUE(server.open(r1).is_ok());   // counter not consumed by failure
}

TEST(SecureChannel, DirectionsUseDistinctKeys) {
  auto [client, server] = make_pair();
  const Bytes msg = to_bytes("same plaintext");
  const Bytes c2s = client.seal(msg);
  const Bytes s2c = server.seal(msg);
  EXPECT_NE(c2s, s2c);
  // A record sealed by the server cannot be opened by the server.
  auto [client2, server2] = make_pair();
  EXPECT_FALSE(server2.open(server2.seal(msg)).is_ok());
}

TEST(SecureChannel, WrongStaticKeyBreaksChannel) {
  // A MITM who substitutes the server static key produces different session
  // keys, so records do not authenticate.
  ChaChaKey::Raw raw{};
  raw.fill(7);
  SecureRandom rng(ChaChaKey::absorb(raw));
  const auto real_static = x25519_keypair_from_seed(rng.key());
  const auto fake_static = x25519_keypair_from_seed(rng.key());
  const auto client_eph = x25519_keypair_from_seed(rng.key());
  const auto server_eph = x25519_keypair_from_seed(rng.key());

  auto client = SecureChannel::initiator(client_eph, fake_static.public_key,
                                         server_eph.public_key);
  auto server = SecureChannel::responder(real_static, server_eph, client_eph.public_key);
  EXPECT_FALSE(server.open(client.seal(to_bytes("hi"))).is_ok());
}

TEST(SecureChannel, DifferentSessionsDifferentCiphertexts) {
  auto p1 = make_pair(1);
  auto p2 = make_pair(2);
  const Bytes msg = to_bytes("identical message");
  EXPECT_NE(p1.client.seal(msg), p2.client.seal(msg));
}

}  // namespace
}  // namespace xsearch::crypto
