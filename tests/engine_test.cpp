#include <gtest/gtest.h>

#include <unordered_set>

#include "dataset/synthetic.hpp"
#include "engine/analytics.hpp"
#include "engine/corpus.hpp"
#include "engine/index.hpp"
#include "engine/search_engine.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::engine {
namespace {

// ---- analytics ---------------------------------------------------------------

TEST(Analytics, TrackingRoundTrip) {
  const std::string tracked = make_tracking_url("https://real.example/page", 42);
  EXPECT_TRUE(is_tracking_url(tracked));
  const auto target = extract_target_url(tracked);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, "https://real.example/page");
}

TEST(Analytics, NonTrackingUrlPassesThrough) {
  EXPECT_FALSE(is_tracking_url("https://real.example/page"));
  EXPECT_FALSE(extract_target_url("https://real.example/page").has_value());
}

TEST(Analytics, DifferentTokensDifferentUrls) {
  EXPECT_NE(make_tracking_url("https://a.example", 1),
            make_tracking_url("https://a.example", 2));
}

// ---- inverted index -----------------------------------------------------------

Document make_doc(DocId id, std::string title, std::string body) {
  Document d;
  d.id = id;
  d.title = std::move(title);
  d.body = std::move(body);
  d.url = "https://doc" + std::to_string(id) + ".example/";
  return d;
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest() {
    index_.add_document(make_doc(0, "private web search", "search engines and privacy"));
    index_.add_document(make_doc(1, "cooking pasta", "boil water add salt pasta"));
    index_.add_document(make_doc(2, "web browsers", "browser market share web"));
    index_.add_document(make_doc(3, "pasta recipes", "pasta sauce tomato recipes"));
  }
  InvertedIndex index_;
};

TEST_F(IndexTest, FindsMatchingDocuments) {
  const auto results = index_.search("pasta", 10);
  ASSERT_EQ(results.size(), 2u);
  std::unordered_set<DocId> docs{results[0].doc, results[1].doc};
  EXPECT_TRUE(docs.contains(1));
  EXPECT_TRUE(docs.contains(3));
}

TEST_F(IndexTest, NoMatchesForUnknownTerms) {
  EXPECT_TRUE(index_.search("zebra quantum", 10).empty());
}

TEST_F(IndexTest, TopKLimitsResults) {
  EXPECT_EQ(index_.search("web", 1).size(), 1u);
}

TEST_F(IndexTest, ScoresDescending) {
  const auto results = index_.search("web search privacy", 10);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST_F(IndexTest, MultiTermMatchRanksHigher) {
  // Doc 0 matches both "web" and "search"; doc 2 only "web".
  const auto results = index_.search("web search", 10);
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 0u);
}

TEST_F(IndexTest, TitleBoostMatters) {
  // "pasta" in title (doc 1 and 3 both have it in title) — build a case
  // where only the boost separates: doc A body-only vs doc B title.
  InvertedIndex idx;
  idx.add_document(make_doc(0, "unrelated title", "keyword in the body text here"));
  idx.add_document(make_doc(1, "keyword headline", "completely different content"));
  const auto results = idx.search("keyword", 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 1u);
}

TEST_F(IndexTest, EmptyQuery) { EXPECT_TRUE(index_.search("", 10).empty()); }

TEST_F(IndexTest, ZeroTopK) { EXPECT_TRUE(index_.search("web", 0).empty()); }

TEST_F(IndexTest, DeterministicTieBreakById) {
  InvertedIndex idx;
  idx.add_document(make_doc(0, "same words", "same words"));
  idx.add_document(make_doc(1, "same words", "same words"));
  const auto results = idx.search("same", 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_EQ(results[1].doc, 1u);
}

TEST_F(IndexTest, ZeroWeightPostingsNeverDuplicateDocs) {
  // title_boost = 0 produces postings with weight 0 and thus score
  // contributions of exactly 0.0; first-touch tracking must not rely on a
  // zero score, or a doc matched by several such terms is emitted twice.
  InvertedIndex idx(Bm25Params{.title_boost = 0.0});
  idx.add_document(make_doc(0, "alpha beta", ""));
  idx.add_document(make_doc(1, "gamma", "alpha beta body"));
  const auto results = idx.search("alpha beta", 10);
  std::unordered_set<DocId> seen;
  for (const auto& r : results) {
    EXPECT_TRUE(seen.insert(r.doc).second) << "doc " << r.doc << " duplicated";
  }
}

TEST_F(IndexTest, ScratchReuseAcrossQueriesMatchesFreshSearch) {
  // The OR path reuses one Scratch for all sub-queries; results must be
  // identical to independent fresh searches.
  InvertedIndex::Scratch scratch;
  std::vector<ScoredDoc> reused;
  for (const std::string_view q : {"web search", "pasta", "private web", ""}) {
    index_.search_with(q, 5, scratch, reused);
    const auto fresh = index_.search(q, 5);
    ASSERT_EQ(reused.size(), fresh.size()) << q;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(reused[i].doc, fresh[i].doc) << q;
      EXPECT_DOUBLE_EQ(reused[i].score, fresh[i].score) << q;
    }
  }
}

// ---- corpus + engine -----------------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  static dataset::QueryLog make_log() {
    dataset::SyntheticLogConfig config;
    config.num_users = 30;
    config.total_queries = 3000;
    config.vocab_size = 1500;
    config.num_topics = 15;
    config.words_per_topic = 80;
    return dataset::generate_synthetic_log(config);
  }

  EngineTest()
      : log_(make_log()),
        corpus_(log_, CorpusConfig{.seed = 1, .num_documents = 2000}),
        engine_(corpus_) {}

  dataset::QueryLog log_;
  Corpus corpus_;
  SearchEngine engine_;
};

TEST_F(EngineTest, CorpusHasRequestedSize) { EXPECT_EQ(corpus_.size(), 2000u); }

TEST_F(EngineTest, CorpusDeterministic) {
  Corpus again(log_, CorpusConfig{.seed = 1, .num_documents = 2000});
  ASSERT_EQ(again.size(), corpus_.size());
  EXPECT_EQ(again.documents()[17].title, corpus_.documents()[17].title);
  EXPECT_EQ(again.documents()[999].body, corpus_.documents()[999].body);
}

TEST_F(EngineTest, DocumentsNonEmpty) {
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& d = corpus_.documents()[i * 31 % corpus_.size()];
    EXPECT_FALSE(d.title.empty());
    EXPECT_FALSE(d.body.empty());
    EXPECT_FALSE(d.url.empty());
  }
}

TEST_F(EngineTest, QueriesFromLogGetResults) {
  // Documents are seeded from log queries, so most real queries match.
  std::size_t with_results = 0;
  constexpr std::size_t kSamples = 50;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto& q = log_.records()[i * 53 % log_.size()].text;
    if (!engine_.search(q, 20).empty()) ++with_results;
  }
  EXPECT_GT(with_results, kSamples * 3 / 4);
}

TEST_F(EngineTest, ResultsAreDecorated) {
  const auto& q = log_.records()[0].text;
  const auto results = engine_.search(q, 10);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    EXPECT_TRUE(is_tracking_url(r.url)) << r.url;
    EXPECT_FALSE(r.title.empty());
  }
}

TEST_F(EngineTest, SnippetIsBodyPrefix) {
  const auto& q = log_.records()[0].text;
  const auto results = engine_.search(q, 5);
  ASSERT_FALSE(results.empty());
  const auto& doc = corpus_.documents()[results[0].doc];
  EXPECT_TRUE(doc.body.starts_with(results[0].description.substr(
      0, std::min<std::size_t>(results[0].description.size(), 10))));
}

TEST_F(EngineTest, OrMergeDeduplicates) {
  const auto& q = log_.records()[0].text;
  // OR of the same query twice must not duplicate documents.
  const auto merged = engine_.search_or({q, q}, 10);
  std::unordered_set<DocId> seen;
  for (const auto& r : merged) {
    EXPECT_TRUE(seen.insert(r.doc).second) << "duplicate doc " << r.doc;
  }
}

TEST_F(EngineTest, OrMergeCoversAllSubQueries) {
  const auto& q1 = log_.records()[0].text;
  const auto& q2 = log_.records()[log_.size() / 2].text;
  const auto r1 = engine_.search(q1, 5);
  const auto r2 = engine_.search(q2, 5);
  if (r1.empty() || r2.empty()) GTEST_SKIP() << "need both queries to match";
  const auto merged = engine_.search_or({q1, q2}, 5);
  std::unordered_set<DocId> merged_docs;
  for (const auto& r : merged) merged_docs.insert(r.doc);
  EXPECT_TRUE(merged_docs.contains(r1[0].doc));
  EXPECT_TRUE(merged_docs.contains(r2[0].doc));
}

TEST_F(EngineTest, ObserverSeesQueries) {
  std::vector<std::string> seen;
  engine_.set_observer([&seen](std::string_view q) { seen.emplace_back(q); });
  (void)engine_.search("hello world", 5);
  (void)engine_.search_or({"a", "b"}, 5);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "hello world");
  EXPECT_EQ(seen[1], "a OR b");
}

}  // namespace
}  // namespace xsearch::engine
