#include "common/log.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"

namespace xsearch {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, MacrosCompileAndRespectLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // None of these may crash or emit with logging off.
  XS_LOG_DEBUG("debug %d", 1);
  XS_LOG_INFO("info %s", "text");
  XS_LOG_WARN("warn");
  XS_LOG_ERROR("error %f", 3.14);
}

TEST(Log, FormattingBelowLevelIsCheap) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  const Stopwatch timer;
  for (int i = 0; i < 100000; ++i) {
    XS_LOG_DEBUG("suppressed %d %s %f", i, "payload", 1.0);
  }
  // Suppressed logging must not format: far under a microsecond each.
  EXPECT_LT(timer.elapsed(), 50 * kMilli);
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(-50);  // negative deltas ignored
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(500);
  EXPECT_EQ(clock.now(), 500);
  clock.advance_to(400);  // never moves backwards
  EXPECT_EQ(clock.now(), 500);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch timer;
  const Nanos t1 = timer.elapsed();
  EXPECT_GE(t1, 0);
  // Busy loop a little.
  volatile int sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.elapsed(), t1);
  timer.restart();
  EXPECT_LT(timer.elapsed(), kSecond);
}

TEST(WallClock, Monotonic) {
  const Nanos a = wall_now();
  const Nanos b = wall_now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace xsearch
