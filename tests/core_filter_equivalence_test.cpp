// Randomized equivalence proof for the tokenize-once ResultFilter.
//
// The optimized filter tokenizes each sub-query and each result field
// exactly once per batch and scores via precomputed token→sub-query
// postings (common words) or a shared vocabulary (cosine). This test pins
// it against a straight transcription of Algorithm 2 as the paper states
// it — score every (sub-query, result) pair independently, keep a result
// iff the original's score equals the maximum — across randomized
// workloads, asserting the *exact* kept list (contents and order, ties
// included) for both scoring variants.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "engine/analytics.hpp"
#include "text/sparse_vector.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"
#include "xsearch/filter.hpp"

namespace xsearch::core {
namespace {

// ---- reference implementation (pre-optimization semantics) ---------------

std::size_t ref_common_words(const std::unordered_set<std::string>& a_words,
                             std::string_view b) {
  std::size_t count = 0;
  std::unordered_set<std::string> seen;
  for (auto& token : text::tokenize(b)) {
    if (a_words.contains(token) && seen.insert(token).second) ++count;
  }
  return count;
}

double ref_score(FilterScoring scoring, std::string_view query,
                 const engine::SearchResult& result) {
  if (scoring == FilterScoring::kCommonWords) {
    const auto tokens = text::tokenize(query);
    const std::unordered_set<std::string> words(tokens.begin(), tokens.end());
    return static_cast<double>(ref_common_words(words, result.title) +
                               ref_common_words(words, result.description));
  }
  // Cosine ablation, per-pair fresh vocabulary (id assignment cannot affect
  // cosine, so this is the strictest possible baseline for the shared-
  // vocabulary batch implementation).
  text::Vocabulary vocab;
  const auto q_vec = text::tf_vector(vocab, query);
  const auto r_vec =
      text::tf_vector(vocab, result.title + " " + result.description);
  return q_vec.cosine(r_vec);
}

std::vector<engine::SearchResult> ref_filter(
    FilterScoring scoring, std::string_view original,
    const std::vector<std::string>& fakes,
    std::vector<engine::SearchResult> results) {
  std::vector<engine::SearchResult> kept;
  kept.reserve(results.size());
  for (auto& r : results) {
    const double original_score = ref_score(scoring, original, r);
    bool is_max = true;
    for (const auto& fake : fakes) {
      if (ref_score(scoring, fake, r) > original_score) {
        is_max = false;
        break;
      }
    }
    if (is_max) kept.push_back(std::move(r));
  }
  ResultFilter::strip_tracking(kept);
  return kept;
}

// ---- randomized workloads -------------------------------------------------

// Deliberately overlapping small vocabulary (so score ties are common),
// mixed case (tokenizer folding), stopwords, digits, and punctuation-glued
// tokens.
const std::vector<std::string>& word_pool() {
  static const std::vector<std::string> kPool = {
      "private", "Web",    "search", "ENGINE", "the",   "of",     "and",
      "enclave", "proxy",  "query",  "ق",      "42",    "x86",    "pasta",
      "recipe",  "Pasta",  "sauce",  "privacy", "web",  "tools",  "is",
      "scores",  "match,", "row;",   "",        "a",    "कखग",    "tennis"};
  return kPool;
}

std::string random_text(Rng& rng, std::size_t max_words) {
  std::string out;
  const std::size_t n = rng.uniform(max_words + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!out.empty()) out += ' ';
    out += word_pool()[rng.uniform(word_pool().size())];
  }
  return out;
}

std::vector<engine::SearchResult> random_results(Rng& rng, std::size_t max_n) {
  std::vector<engine::SearchResult> results;
  const std::size_t n = rng.uniform(max_n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    engine::SearchResult r;
    r.doc = static_cast<engine::DocId>(i);
    r.title = random_text(rng, 8);
    r.description = random_text(rng, 30);
    r.score = rng.uniform_double();
    r.url = rng.bernoulli(0.3)
                ? engine::make_tracking_url("https://real.example/p" +
                                                std::to_string(i),
                                            rng.next())
                : "https://clean.example/p" + std::to_string(i);
    results.push_back(std::move(r));
  }
  return results;
}

class FilterEquivalence : public ::testing::TestWithParam<FilterScoring> {};

TEST_P(FilterEquivalence, MatchesReferenceAcrossRandomWorkloads) {
  const FilterScoring scoring = GetParam();
  const ResultFilter optimized(scoring);
  Rng rng(scoring == FilterScoring::kCommonWords ? 0xf117e4 : 0xc051ce);

  const int rounds = scoring == FilterScoring::kCommonWords ? 200 : 80;
  for (int round = 0; round < rounds; ++round) {
    const std::string original = random_text(rng, 6);
    std::vector<std::string> fakes;
    const std::size_t k = rng.uniform(9);  // 0..8 (includes the no-fake case)
    for (std::size_t i = 0; i < k; ++i) fakes.push_back(random_text(rng, 6));
    const auto results = random_results(rng, 50);

    const auto expected = ref_filter(scoring, original, fakes, results);
    const auto actual = optimized.filter(original, fakes, results);
    ASSERT_EQ(actual, expected)
        << "round " << round << " original='" << original << "' k=" << k
        << " results=" << results.size();
  }
}

TEST_P(FilterEquivalence, TieOnZeroScoresKeepsResult) {
  // A result sharing nothing with any sub-query scores 0 everywhere; the
  // original ties the max and Algorithm 2 keeps it. Both implementations
  // must agree on this edge (the postings-based scorer never even sees the
  // result's tokens).
  const ResultFilter optimized(GetParam());
  std::vector<engine::SearchResult> results(1);
  results[0].title = "zebra";
  results[0].description = "quagga";
  const auto expected =
      ref_filter(GetParam(), "alpha", {"beta"}, results);
  EXPECT_EQ(optimized.filter("alpha", {"beta"}, results), expected);
  EXPECT_EQ(expected.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllScorings, FilterEquivalence,
                         ::testing::Values(FilterScoring::kCommonWords,
                                           FilterScoring::kCosine),
                         [](const auto& info) {
                           return info.param == FilterScoring::kCommonWords
                                      ? "CommonWords"
                                      : "Cosine";
                         });

}  // namespace
}  // namespace xsearch::core
