// End-to-end integration tests for the X-Search proxy and client broker:
// attestation, channel establishment, query obfuscation, engine round trip
// through the ocall boundary, filtering, and failure paths.
#include <gtest/gtest.h>

#include <thread>

#include "dataset/synthetic.hpp"
#include "engine/analytics.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "text/tokenizer.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::core {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  static dataset::QueryLog make_log() {
    dataset::SyntheticLogConfig config;
    config.num_users = 30;
    config.total_queries = 2000;
    config.vocab_size = 1200;
    config.num_topics = 12;
    config.words_per_topic = 80;
    return dataset::generate_synthetic_log(config);
  }

  ProxyTest()
      : log_(make_log()),
        corpus_(log_, engine::CorpusConfig{.seed = 2, .num_documents = 1500}),
        engine_(corpus_),
        authority_(to_bytes("intel-attestation-root")) {}

  XSearchProxy::Options options(std::size_t k = 2) {
    XSearchProxy::Options opt;
    opt.k = k;
    opt.history_capacity = 10'000;
    opt.seed = 99;
    return opt;
  }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
};

TEST_F(ProxyTest, CreateValidatesOptions) {
  auto bad_k = options();
  bad_k.k = 0;
  EXPECT_EQ(XSearchProxy::create(&engine_, authority_, bad_k).status().code(),
            StatusCode::kInvalidArgument);

  auto bad_history = options();
  bad_history.history_capacity = 0;
  EXPECT_EQ(
      XSearchProxy::create(&engine_, authority_, bad_history).status().code(),
      StatusCode::kInvalidArgument);

  auto bad_fetch = options();
  bad_fetch.results_per_subquery = 0;
  EXPECT_EQ(
      XSearchProxy::create(&engine_, authority_, bad_fetch).status().code(),
      StatusCode::kInvalidArgument);

  // engine_tls_public_key without a SecureEngineGateway is a config error.
  auto orphan_key = options();
  orphan_key.engine_tls_public_key = crypto::X25519Key{};
  EXPECT_EQ(
      XSearchProxy::create(&engine_, authority_, orphan_key).status().code(),
      StatusCode::kInvalidArgument);

  // A null engine requires saturation mode.
  EXPECT_EQ(XSearchProxy::create(nullptr, authority_, options()).status().code(),
            StatusCode::kFailedPrecondition);

  auto proxy = XSearchProxy::create(&engine_, authority_, options());
  ASSERT_TRUE(proxy.is_ok()) << proxy.status().to_string();
  ClientBroker broker(*proxy.value(), authority_, proxy.value()->measurement(), 7);
  EXPECT_TRUE(broker.connect().is_ok());
}

TEST_F(ProxyTest, WarmHistoryPreloadsDecoys) {
  auto proxy = XSearchProxy::create(&engine_, authority_, options());
  ASSERT_TRUE(proxy.is_ok());
  EXPECT_EQ(proxy.value()->history_size(), 0u);
  proxy.value()->warm_history({log_.records()[0].text, log_.records()[1].text});
  EXPECT_EQ(proxy.value()->history_size(), 2u);
}

TEST_F(ProxyTest, BrokerSearchReturnsResults) {
  XSearchProxy proxy(&engine_, authority_, options());
  // Warm the history so obfuscation has decoys.
  ClientBroker warm(proxy, authority_, proxy.measurement(), 1);
  for (std::size_t i = 0; i < 20; ++i) {
    (void)warm.search(log_.records()[i].text);
  }

  ClientBroker broker(proxy, authority_, proxy.measurement(), 2);
  const auto& query = log_.records()[50].text;
  const auto results = broker.search(query);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_FALSE(results.value().empty());
}

TEST_F(ProxyTest, ResultsAreScrubbedOfTracking) {
  XSearchProxy proxy(&engine_, authority_, options());
  ClientBroker broker(proxy, authority_, proxy.measurement(), 3);
  const auto results = broker.search(log_.records()[10].text);
  ASSERT_TRUE(results.is_ok());
  for (const auto& r : results.value()) {
    EXPECT_FALSE(engine::is_tracking_url(r.url)) << r.url;
  }
}

TEST_F(ProxyTest, EngineNeverSeesRawQueryOnceWarm) {
  XSearchProxy proxy(&engine_, authority_, options(/*k=*/3));
  std::vector<std::string> observed;
  engine_.set_observer([&observed](std::string_view q) { observed.emplace_back(q); });

  ClientBroker broker(proxy, authority_, proxy.measurement(), 4);
  // Warm-up queries fill the history.
  for (std::size_t i = 0; i < 30; ++i) {
    (void)broker.search(log_.records()[i].text);
  }
  observed.clear();

  const std::string secret = log_.records()[100].text;
  ASSERT_TRUE(broker.search(secret).is_ok());
  ASSERT_EQ(observed.size(), 1u);
  // The engine saw an OR query strictly larger than the secret...
  EXPECT_NE(observed[0], secret);
  EXPECT_NE(observed[0].find(" OR "), std::string::npos);
  // ... which embeds the secret among k fakes.
  EXPECT_NE(observed[0].find(secret), std::string::npos);
}

TEST_F(ProxyTest, HistoryGrowsWithQueries) {
  XSearchProxy proxy(&engine_, authority_, options());
  ClientBroker broker(proxy, authority_, proxy.measurement(), 5);
  EXPECT_EQ(proxy.history_size(), 0u);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(broker.search(log_.records()[i].text).is_ok());
  }
  EXPECT_EQ(proxy.history_size(), 10u);
}

TEST_F(ProxyTest, TransitionCountsMatchNarrowInterface) {
  XSearchProxy proxy(&engine_, authority_, options());
  const auto before = proxy.enclave().transition_stats();
  ClientBroker broker(proxy, authority_, proxy.measurement(), 6);
  ASSERT_TRUE(broker.search(log_.records()[0].text).is_ok());
  const auto after = proxy.enclave().transition_stats();
  // 1 handshake ecall + 1 query ecall; 4 socket ocalls per engine trip.
  EXPECT_EQ(after.ecalls - before.ecalls, 2u);
  EXPECT_EQ(after.ocalls - before.ocalls, 4u);
}

TEST_F(ProxyTest, WrongMeasurementRejectedByBroker) {
  XSearchProxy proxy(&engine_, authority_, options());
  sgx::Measurement wrong{};
  wrong.fill(0xab);
  ClientBroker broker(proxy, authority_, wrong, 7);
  const auto results = broker.search("query");
  EXPECT_FALSE(results.is_ok());
  EXPECT_EQ(results.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(ProxyTest, WrongAuthorityRejectedByBroker) {
  XSearchProxy proxy(&engine_, authority_, options());
  sgx::AttestationAuthority rogue(to_bytes("rogue-root"));
  ClientBroker broker(proxy, rogue, proxy.measurement(), 8);
  EXPECT_FALSE(broker.search("query").is_ok());
}

TEST_F(ProxyTest, TamperedRecordRejected) {
  XSearchProxy proxy(&engine_, authority_, options());
  ClientBroker broker(proxy, authority_, proxy.measurement(), 9);
  ASSERT_TRUE(broker.connect().is_ok());

  // Forge a record outside any channel: the enclave must refuse it.
  Bytes garbage(64, 0x5a);
  const auto response = proxy.handle_query_record(1, garbage);
  EXPECT_FALSE(response.is_ok());
}

TEST_F(ProxyTest, UnknownSessionRejected) {
  XSearchProxy proxy(&engine_, authority_, options());
  const auto response = proxy.handle_query_record(4242, Bytes(64, 1));
  EXPECT_FALSE(response.is_ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST_F(ProxyTest, MultipleIndependentClients) {
  XSearchProxy proxy(&engine_, authority_, options());
  ClientBroker alice(proxy, authority_, proxy.measurement(), 10);
  ClientBroker bob(proxy, authority_, proxy.measurement(), 11);
  ASSERT_TRUE(alice.search(log_.records()[0].text).is_ok());
  ASSERT_TRUE(bob.search(log_.records()[1].text).is_ok());
  ASSERT_TRUE(alice.search(log_.records()[2].text).is_ok());
}

TEST_F(ProxyTest, ConcurrentClients) {
  XSearchProxy proxy(&engine_, authority_, options());
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientBroker broker(proxy, authority_, proxy.measurement(),
                          static_cast<std::uint64_t>(100 + c));
      for (int i = 0; i < kQueriesEach; ++i) {
        const auto& q = log_.records()[static_cast<std::size_t>(c * kQueriesEach + i)].text;
        if (!broker.search(q).is_ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(proxy.history_size(),
            static_cast<std::size_t>(kClients) * kQueriesEach);
}

TEST_F(ProxyTest, SaturationModeSkipsEngine) {
  XSearchProxy::Options opt = options();
  opt.contact_engine = false;
  XSearchProxy proxy(nullptr, authority_, opt);
  ClientBroker broker(proxy, authority_, proxy.measurement(), 12);
  const auto results = broker.search("a query");
  ASSERT_TRUE(results.is_ok());
  EXPECT_TRUE(results.value().empty());
  EXPECT_EQ(proxy.history_size(), 1u);  // obfuscation path still runs
  // Only the 2 ecalls happened; no socket ocalls.
  EXPECT_EQ(proxy.enclave().transition_stats().ocalls, 0u);
}

TEST_F(ProxyTest, FilteredResultsRelateToOriginal) {
  XSearchProxy proxy(&engine_, authority_, options(/*k=*/2));
  ClientBroker broker(proxy, authority_, proxy.measurement(), 13);
  for (std::size_t i = 0; i < 40; ++i) {
    (void)broker.search(log_.records()[i].text);
  }
  const std::string query = log_.records()[123].text;
  const auto results = broker.search(query);
  ASSERT_TRUE(results.is_ok());
  // Every surviving result shares at least one word with the query
  // (otherwise its original-score would be 0 and a fake could outrank it —
  // zero-score results only survive when no fake matches either).
  const auto q_tokens = text::tokenize(query);
  for (const auto& r : results.value()) {
    const std::size_t overlap = text::common_word_count(
        query, r.title + " " + r.description);
    const bool relevant = overlap > 0;
    if (!relevant) {
      // Permitted only when the result is equally unrelated to everything.
      SUCCEED();
    }
  }
}

TEST_F(ProxyTest, EpcUsageVisible) {
  XSearchProxy proxy(&engine_, authority_, options());
  ClientBroker broker(proxy, authority_, proxy.measurement(), 14);
  const std::size_t before = proxy.enclave().epc().in_use();
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(broker.search(log_.records()[i].text).is_ok());
  }
  EXPECT_GT(proxy.enclave().epc().in_use(), before);
  // Enclave occupancy decomposes exactly into the history table plus the
  // per-session channel state held by the bounded session table.
  EXPECT_EQ(proxy.history_memory_bytes() + proxy.session_stats().epc_bytes,
            proxy.enclave().epc().in_use());
  EXPECT_EQ(proxy.session_stats().active, 1u);
}

}  // namespace
}  // namespace xsearch::core
