#include "text/cooccurrence.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "text/tokenizer.hpp"

namespace xsearch::text {
namespace {

class CooccurrenceTest : public ::testing::Test {
 protected:
  CooccurrenceTest() : cooc_(vocab_) {}
  Vocabulary vocab_;
  CooccurrenceMatrix cooc_;
};

TEST_F(CooccurrenceTest, EmptyMatrix) {
  EXPECT_EQ(cooc_.term_count(), 0u);
  Rng rng(1);
  EXPECT_TRUE(cooc_.sample_term(rng).empty());
  EXPECT_TRUE(cooc_.generate_fake_query(3, rng).empty());
}

TEST_F(CooccurrenceTest, PairCountsSymmetric) {
  cooc_.add_query("apple banana");
  EXPECT_EQ(cooc_.pair_count("apple", "banana"), 1u);
  EXPECT_EQ(cooc_.pair_count("banana", "apple"), 1u);
}

TEST_F(CooccurrenceTest, PairCountsAccumulate) {
  cooc_.add_query("apple banana");
  cooc_.add_query("apple banana cherry");
  EXPECT_EQ(cooc_.pair_count("apple", "banana"), 2u);
  EXPECT_EQ(cooc_.pair_count("apple", "cherry"), 1u);
}

TEST_F(CooccurrenceTest, DuplicateWordsInQueryCountOnce) {
  cooc_.add_query("apple apple banana");
  EXPECT_EQ(cooc_.pair_count("apple", "banana"), 1u);
  EXPECT_EQ(cooc_.term_frequency("apple"), 1u);
}

TEST_F(CooccurrenceTest, UnknownTermsHaveZeroCounts) {
  cooc_.add_query("apple banana");
  EXPECT_EQ(cooc_.pair_count("apple", "zebra"), 0u);
  EXPECT_EQ(cooc_.term_frequency("zebra"), 0u);
}

TEST_F(CooccurrenceTest, StopwordsExcluded) {
  cooc_.add_query("the apple and banana");
  EXPECT_EQ(cooc_.term_frequency("the"), 0u);
  EXPECT_EQ(cooc_.pair_count("apple", "banana"), 1u);
}

TEST_F(CooccurrenceTest, SampleTermRespectsFrequency) {
  for (int i = 0; i < 90; ++i) cooc_.add_query("common");
  for (int i = 0; i < 10; ++i) cooc_.add_query("rare");
  Rng rng(42);
  int common_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (cooc_.sample_term(rng) == "common") ++common_hits;
  }
  EXPECT_NEAR(common_hits, 1800, 120);
}

TEST_F(CooccurrenceTest, SampleNeighbourPrefersCooccurring) {
  for (int i = 0; i < 50; ++i) cooc_.add_query("seed partner");
  cooc_.add_query("seed stranger");
  Rng rng(7);
  int partner_hits = 0;
  for (int i = 0; i < 500; ++i) {
    if (cooc_.sample_neighbour("seed", rng) == "partner") ++partner_hits;
  }
  EXPECT_GT(partner_hits, 400);
}

TEST_F(CooccurrenceTest, SampleNeighbourFallsBackForUnknown) {
  cooc_.add_query("apple banana");
  Rng rng(9);
  const std::string n = cooc_.sample_neighbour("zebra", rng);
  EXPECT_TRUE(n == "apple" || n == "banana");
}

TEST_F(CooccurrenceTest, FakeQueryHasRequestedLength) {
  cooc_.add_query("alpha beta gamma");
  cooc_.add_query("beta gamma delta");
  cooc_.add_query("gamma delta epsilon");
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const std::string fake = cooc_.generate_fake_query(3, rng);
    EXPECT_EQ(tokenize(fake).size(), 3u);
  }
}

TEST_F(CooccurrenceTest, FakeQueryUsesRealTerms) {
  cooc_.add_query("alpha beta");
  cooc_.add_query("gamma delta");
  Rng rng(5);
  const std::unordered_set<std::string> known = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < 50; ++i) {
    for (const auto& tok : tokenize(cooc_.generate_fake_query(2, rng))) {
      EXPECT_TRUE(known.contains(tok)) << tok;
    }
  }
}

TEST_F(CooccurrenceTest, FakeQueryWalkFollowsEdges) {
  // Graph: a-b, b-c (no a-c edge). Walks of length 2 starting anywhere can
  // only produce adjacent pairs.
  cooc_.add_query("aa bb");
  cooc_.add_query("bb cc");
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto toks = tokenize(cooc_.generate_fake_query(2, rng));
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_GT(cooc_.pair_count(toks[0], toks[1]), 0u)
        << toks[0] << " " << toks[1];
  }
}

TEST_F(CooccurrenceTest, ZeroLengthFake) {
  cooc_.add_query("apple banana");
  Rng rng(1);
  EXPECT_TRUE(cooc_.generate_fake_query(0, rng).empty());
}

}  // namespace
}  // namespace xsearch::text
