#include "attack/ml_attack.hpp"

#include <gtest/gtest.h>

#include "attack/simattack.hpp"
#include "dataset/synthetic.hpp"

namespace xsearch::attack {
namespace {

dataset::QueryLog tiny_training() {
  return dataset::QueryLog({
      {1, 0, "chronic back pain"},
      {1, 1, "back pain treatment"},
      {1, 2, "pain relief exercises"},
      {2, 0, "pasta carbonara recipe"},
      {2, 1, "italian pasta sauce"},
      {2, 2, "fresh pasta dough"},
      {3, 0, "javascript async await"},
      {3, 1, "javascript promises tutorial"},
      {3, 2, "nodejs event loop"},
  });
}

TEST(NaiveBayes, OwnProfileScoresHigher) {
  NaiveBayesAttack attack(tiny_training());
  EXPECT_GT(attack.log_score("back pain remedies", 1),
            attack.log_score("back pain remedies", 2));
  EXPECT_GT(attack.log_score("pasta sauce ideas", 2),
            attack.log_score("pasta sauce ideas", 3));
}

TEST(NaiveBayes, UnknownUserScoresBottom) {
  NaiveBayesAttack attack(tiny_training());
  EXPECT_LT(attack.log_score("anything", 99), attack.log_score("anything", 1));
}

TEST(NaiveBayes, IdentifiesUserFromPlainQuery) {
  NaiveBayesAttack attack(tiny_training());
  const auto id = attack.attack({"pasta dough recipe"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->user, 2u);
}

TEST(NaiveBayes, PicksOriginalAmongAlienFakes) {
  NaiveBayesAttack attack(tiny_training());
  const auto id =
      attack.attack({"zzz unknown", "javascript event tutorial", "qqq www"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->user, 3u);
  EXPECT_EQ(id->query, "javascript event tutorial");
}

TEST(NaiveBayes, AllAlienQueriesFail) {
  NaiveBayesAttack attack(tiny_training());
  EXPECT_FALSE(attack.attack({"xxx yyy", "zzz www"}).has_value());
}

TEST(NaiveBayes, EmptyInputFails) {
  NaiveBayesAttack attack(tiny_training());
  EXPECT_FALSE(attack.attack({}).has_value());
}

TEST(NaiveBayes, PriorMattersForBareQueries) {
  // User 1 has 6 queries, user 2 has 3; a term common to both should tip
  // toward the more active user via the prior.
  NaiveBayesAttack attack(dataset::QueryLog({
      {1, 0, "shared term alpha"},
      {1, 1, "shared term beta"},
      {1, 2, "shared term gamma"},
      {1, 3, "other stuff"},
      {1, 4, "more things"},
      {1, 5, "further words"},
      {2, 0, "shared term delta"},
      {2, 1, "unrelated topic"},
      {2, 2, "completely different"},
  }));
  const auto id = attack.attack({"shared term"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->user, 1u);
}

TEST(NaiveBayes, SimAttackAtLeastAsStrongOnSyntheticLog) {
  // The paper's premise for choosing SimAttack (§5.3.1): it beats the ML
  // attack. Verify on a synthetic log at k = 0.
  dataset::SyntheticLogConfig config;
  config.num_users = 60;
  config.total_queries = 8'000;
  config.vocab_size = 3'000;
  config.num_topics = 30;
  const auto log = dataset::generate_synthetic_log(config);
  const auto top = log.most_active_users(20);
  const auto split = dataset::split_per_user(log.filter_users(top), 2.0 / 3.0);

  SimAttack sim(split.train);
  NaiveBayesAttack bayes(split.train);

  std::size_t sim_correct = 0, nb_correct = 0, attempts = 0;
  for (const auto& rec : split.test.records()) {
    if (attempts >= 150) break;
    ++attempts;
    if (const auto id = sim.attack({rec.text}); id && id->user == rec.user) {
      ++sim_correct;
    }
    if (const auto id = bayes.attack({rec.text}); id && id->user == rec.user) {
      ++nb_correct;
    }
  }
  // Allow a small slack: the claim is "at least comparable, typically better".
  EXPECT_GE(sim_correct + 5, nb_correct);
  EXPECT_GT(sim_correct, 0u);
}

}  // namespace
}  // namespace xsearch::attack
