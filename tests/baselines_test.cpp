#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/direct/direct.hpp"
#include "baselines/peas/peas.hpp"
#include "baselines/tmn/trackmenot.hpp"
#include "baselines/tor/tor.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static dataset::QueryLog make_log() {
    dataset::SyntheticLogConfig config;
    config.num_users = 30;
    config.total_queries = 2000;
    config.vocab_size = 1200;
    config.num_topics = 12;
    config.words_per_topic = 80;
    return dataset::generate_synthetic_log(config);
  }

  BaselinesTest()
      : log_(make_log()),
        corpus_(log_, engine::CorpusConfig{.seed = 3, .num_documents = 1500}),
        engine_(corpus_) {}

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
};

// ---- PEAS --------------------------------------------------------------------

TEST_F(BaselinesTest, PeasFakeGeneratorMatchesReferenceLength) {
  peas::FakeQueryGenerator fakes(log_);
  Rng rng(1);
  const std::string fake = fakes.generate("alpha beta gamma", rng);
  EXPECT_EQ(text::tokenize(fake).size(), 3u);
}

TEST_F(BaselinesTest, PeasFakesUseLogVocabulary) {
  peas::FakeQueryGenerator fakes(log_);
  std::unordered_set<std::string> log_words;
  for (const auto& r : log_.records()) {
    for (auto& t : text::tokenize(r.text)) log_words.insert(std::move(t));
  }
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    for (const auto& tok : text::tokenize(fakes.generate("two words", rng))) {
      EXPECT_TRUE(log_words.contains(tok)) << tok;
    }
  }
}

TEST_F(BaselinesTest, PeasProtectContainsOriginalPlusK) {
  peas::FakeQueryGenerator fakes(log_);
  peas::PeasIssuer issuer(&engine_, 7);
  peas::PeasReceiver receiver(issuer);
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, 3, 42);

  const auto sub_queries = client.protect("my real query");
  EXPECT_EQ(sub_queries.size(), 4u);
  EXPECT_NE(std::find(sub_queries.begin(), sub_queries.end(), "my real query"),
            sub_queries.end());
}

TEST_F(BaselinesTest, PeasEndToEndSearch) {
  peas::FakeQueryGenerator fakes(log_);
  peas::PeasIssuer issuer(&engine_, 7);
  peas::PeasReceiver receiver(issuer);
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, 2, 42);

  const auto& query = log_.records()[5].text;
  const auto results = client.search(query);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_FALSE(results.value().empty());
  EXPECT_EQ(receiver.forwarded_count(), 1u);
}

TEST_F(BaselinesTest, PeasIssuerRejectsGarbageEnvelope) {
  peas::PeasIssuer issuer(&engine_, 7);
  EXPECT_FALSE(issuer.handle(Bytes(100, 0x11)).is_ok());
  EXPECT_FALSE(issuer.handle(Bytes{1, 2, 3}).is_ok());
}

TEST_F(BaselinesTest, PeasEnvelopeUnreadableByReceiver) {
  // The receiver sees only the envelope; without the issuer's private key
  // another issuer cannot decrypt it.
  peas::FakeQueryGenerator fakes(log_);
  peas::PeasIssuer issuer(&engine_, 7);
  peas::PeasIssuer eavesdropper(&engine_, 8);  // different key
  peas::PeasReceiver receiver(eavesdropper);   // maliciously rerouted
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, 2, 42);
  const auto results = client.search("secret");
  EXPECT_FALSE(results.is_ok());
}

TEST_F(BaselinesTest, PeasSaturationModeWorksWithoutEngine) {
  peas::FakeQueryGenerator fakes(log_);
  peas::PeasIssuer issuer(nullptr, 7);
  peas::PeasReceiver receiver(issuer);
  peas::PeasClient client(1, receiver, issuer.public_key(), fakes, 2, 42);
  const auto results = client.search("query");
  ASSERT_TRUE(results.is_ok());
  EXPECT_TRUE(results.value().empty());
}

// ---- Tor ---------------------------------------------------------------------

class TorTest : public BaselinesTest {
 protected:
  TorTest() : entry_(1), middle_(2), exit_(3) {}
  tor::TorRelay entry_, middle_, exit_;

  std::vector<tor::TorRelay*> path() { return {&entry_, &middle_, &exit_}; }
};

TEST_F(TorTest, EndToEndSearch) {
  tor::TorClient client(path(), &engine_, 11);
  const auto& query = log_.records()[5].text;
  const auto results = client.search(query);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_FALSE(results.value().empty());
}

TEST_F(TorTest, ResultsMatchDirect) {
  // Tor adds no obfuscation: the exit issues the plain query, so results
  // equal a direct search.
  tor::TorClient client(path(), &engine_, 11);
  direct::DirectClient plain(engine_);
  const auto& query = log_.records()[7].text;
  const auto via_tor = client.search(query);
  ASSERT_TRUE(via_tor.is_ok());
  EXPECT_EQ(via_tor.value(), plain.search(query, 20));
}

TEST_F(TorTest, SequentialQueriesOnOneCircuit) {
  tor::TorClient client(path(), &engine_, 11);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.search(log_.records()[static_cast<std::size_t>(i)].text).is_ok())
        << "query " << i;
  }
}

TEST_F(TorTest, OnionLayersAreRealEncryption) {
  tor::TorCircuit circuit(99, path(), 5);
  const Bytes payload = to_bytes("the plaintext query");
  Bytes onion = circuit.build_onion(payload);
  // Three AEAD layers: 3 * 16 bytes of tags on top of the payload.
  EXPECT_EQ(onion.size(), payload.size() + 3 * crypto::kAeadTagSize);
  // No relay key, no peel: flipping any bit breaks the outermost layer.
  onion[0] ^= 1;
  EXPECT_FALSE(entry_.peel(99, onion).is_ok());
}

TEST_F(TorTest, RelayPeelsExactlyOneLayer) {
  tor::TorCircuit circuit(99, path(), 5);
  const Bytes payload = to_bytes("query");
  const Bytes onion = circuit.build_onion(payload);
  auto after_entry = entry_.peel(99, onion);
  ASSERT_TRUE(after_entry.is_ok());
  EXPECT_EQ(after_entry.value().size(), payload.size() + 2 * crypto::kAeadTagSize);
  // The middle relay cannot skip ahead: the exit's peel of the entry-peeled
  // cell fails because one layer (middle) is still in place.
  EXPECT_FALSE(exit_.peel(99, after_entry.value()).is_ok());
}

TEST_F(TorTest, ResponseLayersUnwindCorrectly) {
  tor::TorCircuit circuit(42, path(), 6);
  const Bytes payload = to_bytes("response data");
  Bytes cell(payload);
  for (std::size_t i = 3; i-- > 0;) {
    auto wrapped = path()[i]->wrap(42, cell);
    ASSERT_TRUE(wrapped.is_ok());
    cell = std::move(wrapped).value();
  }
  const auto plain = circuit.unwrap_response(cell);
  ASSERT_TRUE(plain.is_ok());
  EXPECT_EQ(plain.value(), payload);
}

TEST_F(TorTest, UnknownCircuitRejected) {
  EXPECT_FALSE(entry_.peel(12345, Bytes(32, 0)).is_ok());
  EXPECT_FALSE(entry_.wrap(12345, Bytes(32, 0)).is_ok());
}

TEST_F(TorTest, SaturationModeWithoutEngine) {
  tor::TorClient client(path(), nullptr, 11);
  const auto results = client.search("query");
  ASSERT_TRUE(results.is_ok());
  EXPECT_TRUE(results.value().empty());
}

// ---- TrackMeNot -----------------------------------------------------------------

TEST(TrackMeNot, GeneratesNonEmptyFakes) {
  tmn::TmnGenerator gen;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(gen.fake_query(rng).empty());
}

TEST(TrackMeNot, FakesAreShortPhrases) {
  tmn::TmnGenerator gen;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto words = text::tokenize(gen.fake_query(rng)).size();
    EXPECT_GE(words, 1u);
    EXPECT_LE(words, 4u);
  }
}

TEST(TrackMeNot, FakesComeFromHeadlines) {
  tmn::TmnGenerator gen;
  std::unordered_set<std::string> feed_words;
  for (const auto& h : gen.headlines()) {
    for (auto& t : text::tokenize(h)) feed_words.insert(std::move(t));
  }
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    for (const auto& tok : text::tokenize(gen.fake_query(rng))) {
      EXPECT_TRUE(feed_words.contains(tok)) << tok;
    }
  }
}

TEST(TrackMeNot, RssVocabularyDisjointFromQueryLog) {
  // The structural gap Figure 1 relies on: RSS words are not query words.
  dataset::SyntheticLogConfig config;
  config.num_users = 10;
  config.total_queries = 500;
  config.vocab_size = 500;
  config.num_topics = 5;
  config.words_per_topic = 50;
  const auto log = dataset::generate_synthetic_log(config);
  std::unordered_set<std::string> log_words;
  for (const auto& r : log.records()) {
    for (auto& t : text::tokenize(r.text)) log_words.insert(std::move(t));
  }
  tmn::TmnGenerator gen;
  Rng rng(4);
  std::size_t overlapping = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto& tok : text::tokenize(gen.fake_query(rng))) {
      ++total;
      overlapping += log_words.contains(tok);
    }
  }
  EXPECT_LT(overlapping, total / 10);
}

TEST(TrackMeNot, DeterministicInSeed) {
  tmn::TmnGenerator a({.seed = 5});
  tmn::TmnGenerator b({.seed = 5});
  EXPECT_EQ(a.headlines(), b.headlines());
}

// ---- Direct ----------------------------------------------------------------------

TEST_F(BaselinesTest, DirectSearchHitsEngine) {
  direct::DirectClient client(engine_);
  const auto& query = log_.records()[3].text;
  EXPECT_EQ(client.search(query, 10).size(), engine_.search(query, 10).size());
}

}  // namespace
}  // namespace xsearch::baselines
