#include "common/status.hpp"

#include <gtest/gtest.h>

namespace xsearch {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = invalid_argument("bad k");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad k");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(permission_denied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(deadline_exceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(data_loss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_FALSE(r);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  const std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

Status helper_propagates(bool fail) {
  XS_RETURN_IF_ERROR(fail ? data_loss("inner") : Status::ok());
  return Status::ok();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(helper_propagates(false).is_ok());
  EXPECT_EQ(helper_propagates(true).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace xsearch
