#include "xsearch/filter.hpp"

#include <gtest/gtest.h>

#include "engine/analytics.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

engine::SearchResult make_result(std::string title, std::string description,
                                 std::string url = "https://x.example/") {
  engine::SearchResult r;
  r.title = std::move(title);
  r.description = std::move(description);
  r.url = std::move(url);
  return r;
}

TEST(ResultFilter, KeepsResultsMatchingOriginal) {
  ResultFilter filter;
  std::vector<engine::SearchResult> results = {
      make_result("pasta recipes tonight", "pasta sauce tomato"),
      make_result("web privacy tools", "private web search tools"),
  };
  const auto kept = filter.filter("private web search", {"pasta recipes"}, results);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].title, "web privacy tools");
}

TEST(ResultFilter, DropsResultsMatchingFakesBetter) {
  ResultFilter filter;
  std::vector<engine::SearchResult> results = {
      make_result("pasta recipes tonight", "pasta sauce tomato recipes"),
  };
  const auto kept = filter.filter("quantum physics", {"pasta recipes"}, results);
  EXPECT_TRUE(kept.empty());
}

TEST(ResultFilter, TieGoesToOriginal) {
  // Algorithm 2 keeps a result when score[original] equals the max.
  ResultFilter filter;
  std::vector<engine::SearchResult> results = {
      make_result("shared word here", "nothing else"),
  };
  const auto kept = filter.filter("shared alpha", {"shared beta"}, results);
  ASSERT_EQ(kept.size(), 1u);
}

TEST(ResultFilter, NoFakesKeepsEverything) {
  ResultFilter filter;
  std::vector<engine::SearchResult> results = {
      make_result("anything at all", "whatever"),
      make_result("something else", "entirely"),
  };
  EXPECT_EQ(filter.filter("query", {}, results).size(), 2u);
}

TEST(ResultFilter, EmptyResults) {
  ResultFilter filter;
  EXPECT_TRUE(filter.filter("query", {"fake"}, {}).empty());
}

TEST(ResultFilter, ScoresUseTitleAndDescription) {
  ResultFilter filter;
  // Original matches the title once; fake matches the description twice.
  std::vector<engine::SearchResult> results = {
      make_result("original topic", "fake subject matter fake words subject matter"),
  };
  const auto kept = filter.filter("original", {"fake subject matter"}, results);
  EXPECT_TRUE(kept.empty());  // fake scores 3 (fake+subject+matter), original 1
}

TEST(ResultFilter, StripsTrackingUrls) {
  ResultFilter filter;
  std::vector<engine::SearchResult> results = {
      make_result("match query words", "query words",
                  engine::make_tracking_url("https://real.example/page", 7)),
  };
  const auto kept = filter.filter("query words", {}, results);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].url, "https://real.example/page");
}

TEST(ResultFilter, StripTrackingLeavesCleanUrls) {
  std::vector<engine::SearchResult> results = {
      make_result("t", "d", "https://already-clean.example/")};
  ResultFilter::strip_tracking(results);
  EXPECT_EQ(results[0].url, "https://already-clean.example/");
}

TEST(ResultFilter, CosineVariantWorks) {
  ResultFilter filter(FilterScoring::kCosine);
  std::vector<engine::SearchResult> results = {
      make_result("private web search guide", "private web search explained"),
      make_result("pasta cooking guide", "pasta recipes explained"),
  };
  const auto kept = filter.filter("private web search", {"pasta cooking"}, results);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].title, "private web search guide");
}

// ---- wire formats ---------------------------------------------------------------

TEST(Wire, ResultsRoundTrip) {
  std::vector<engine::SearchResult> results = {
      make_result("title one", "desc one", "https://one.example/"),
      make_result("title two", "desc two", "https://two.example/"),
  };
  results[0].doc = 17;
  results[0].score = 3.14;
  const auto parsed = wire::parse_results(wire::serialize_results(results));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), results);
}

TEST(Wire, EmptyResultsRoundTrip) {
  const auto parsed = wire::parse_results(wire::serialize_results({}));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(Wire, ParseResultsRejectsTruncation) {
  const Bytes raw = wire::serialize_results({make_result("t", "d")});
  for (const std::size_t cut : {1u, 5u, 10u}) {
    if (cut < raw.size()) {
      EXPECT_FALSE(wire::parse_results(ByteSpan(raw.data(), raw.size() - cut)).is_ok());
    }
  }
}

TEST(Wire, ParseResultsRejectsTrailingGarbage) {
  Bytes raw = wire::serialize_results({});
  raw.push_back(0xff);
  EXPECT_FALSE(wire::parse_results(raw).is_ok());
}

TEST(Wire, EngineRequestRoundTrip) {
  wire::EngineRequest req;
  req.sub_queries = {"alpha", "beta gamma", "delta"};
  req.top_k_each = 17;
  const auto parsed = wire::parse_engine_request(wire::serialize_engine_request(req));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().sub_queries, req.sub_queries);
  EXPECT_EQ(parsed.value().top_k_each, 17u);
}

TEST(Wire, ClientQueryMessageRoundTrip) {
  const auto parsed = wire::parse_client_message(wire::frame_query("my secret query"));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().type, wire::ClientMessageType::kQuery);
  EXPECT_EQ(parsed.value().query, "my secret query");
}

TEST(Wire, ClientResultsMessageRoundTrip) {
  const auto parsed = wire::parse_client_message(
      wire::frame_results({make_result("t", "d", "https://u.example/")}));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().type, wire::ClientMessageType::kResults);
  ASSERT_EQ(parsed.value().results.size(), 1u);
  EXPECT_EQ(parsed.value().results[0].title, "t");
}

TEST(Wire, ClientErrorMessageRoundTrip) {
  const auto parsed = wire::parse_client_message(wire::frame_error("engine down"));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().type, wire::ClientMessageType::kError);
  EXPECT_EQ(parsed.value().error, "engine down");
}

TEST(Wire, ClientMessageRejectsEmpty) {
  EXPECT_FALSE(wire::parse_client_message({}).is_ok());
}

TEST(Wire, ClientMessageRejectsUnknownTag) {
  EXPECT_FALSE(wire::parse_client_message(Bytes{99, 0, 0, 0, 0}).is_ok());
}

TEST(Wire, PrimitivesRejectTruncation) {
  Bytes buf;
  wire::put_u32(buf, 7);
  std::size_t offset = 2;
  EXPECT_FALSE(wire::get_u32(ByteSpan(buf.data(), 3), offset).is_ok());
  offset = 0;
  EXPECT_FALSE(wire::get_u64(ByteSpan(buf.data(), 4), offset).is_ok());
}

TEST(Wire, DoubleRoundTrip) {
  Bytes buf;
  wire::put_double(buf, -123.456e-7);
  std::size_t offset = 0;
  const auto v = wire::get_double(buf, offset);
  ASSERT_TRUE(v.is_ok());
  EXPECT_DOUBLE_EQ(v.value(), -123.456e-7);
}

}  // namespace
}  // namespace xsearch::core
