// End-to-end equivalence of the switchless and fallback request paths.
//
// Two identically-seeded proxy fleets — one submitting queries through the
// exitless job ring, one on the classic 2-ecall path — must return
// *identical* result lists for the same query stream: the transport under
// the boundary must never change what the enclave computes. Also checks
// that the fleet aggregates ring counters (FleetStats::ring) and that a
// mid-stream worker pause degrades switchless traffic to the ecall path
// without changing answers.
//
// Run under ThreadSanitizer in CI (label: concurrency).
#include "net/proxy_fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"

namespace xsearch::net {
namespace {

class SwitchlessE2eTest : public ::testing::Test {
 protected:
  static dataset::QueryLog make_log() {
    dataset::SyntheticLogConfig config;
    config.num_users = 10;
    config.total_queries = 400;
    config.vocab_size = 600;
    config.num_topics = 6;
    config.words_per_topic = 60;
    return dataset::generate_synthetic_log(config);
  }

  SwitchlessE2eTest()
      : log_(make_log()),
        corpus_(log_, engine::CorpusConfig{.seed = 2, .num_documents = 500}),
        engine_(corpus_),
        authority_(to_bytes("switchless-e2e-root")) {}

  ProxyFleet::Options fleet_options(bool switchless) {
    ProxyFleet::Options options;
    options.workers = 2;
    options.proxy.k = 2;
    options.proxy.history_capacity = 4096;
    options.proxy.seed = 99;
    options.proxy.switchless.enabled = switchless;
    options.proxy.switchless.ring_depth = 8;
    options.proxy.switchless.workers = 1;
    // Workers are live throughout; never time out onto the fallback path,
    // so the "switchless" fleet is *purely* switchless.
    options.proxy.switchless.pickup_patience = 5 * kSecond;
    return options;
  }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
};

TEST_F(SwitchlessE2eTest, SwitchlessAndFallbackReturnIdenticalResults) {
  auto ring_fleet =
      ProxyFleet::create(&engine_, authority_, fleet_options(true));
  auto ecall_fleet =
      ProxyFleet::create(&engine_, authority_, fleet_options(false));
  ASSERT_TRUE(ring_fleet.is_ok()) << ring_fleet.status().to_string();
  ASSERT_TRUE(ecall_fleet.is_ok()) << ecall_fleet.status().to_string();

  const std::vector<std::string> queries = {
      "alpha topic probe", "second query", "alpha topic probe",
      "third distinct query", "fourth", "fifth query words",
  };

  // Same broker seeds against both fleets: the query stream, session
  // placement inputs and client-side randomness are identical; only the
  // boundary transport differs.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    core::ClientBroker ring_broker(*ring_fleet.value(), authority_,
                                   ring_fleet.value()->measurement(), seed);
    core::ClientBroker ecall_broker(*ecall_fleet.value(), authority_,
                                    ecall_fleet.value()->measurement(), seed);
    for (const auto& query : queries) {
      auto via_ring = ring_broker.search(query);
      auto via_ecall = ecall_broker.search(query);
      ASSERT_TRUE(via_ring.is_ok()) << via_ring.status().to_string();
      ASSERT_TRUE(via_ecall.is_ok()) << via_ecall.status().to_string();
      const auto ring_results = std::move(via_ring).value();
      const auto ecall_results = std::move(via_ecall).value();
      ASSERT_EQ(ring_results.size(), ecall_results.size()) << query;
      for (std::size_t i = 0; i < ring_results.size(); ++i) {
        EXPECT_EQ(ring_results[i].doc, ecall_results[i].doc);
        EXPECT_EQ(ring_results[i].title, ecall_results[i].title);
        EXPECT_EQ(ring_results[i].description, ecall_results[i].description);
        EXPECT_EQ(ring_results[i].url, ecall_results[i].url);
        EXPECT_DOUBLE_EQ(ring_results[i].score, ecall_results[i].score);
      }
    }
  }

  // The fleet saw the traffic on the path we think it did, and the
  // per-worker counters roll up into FleetStats.
  const auto ring_stats = ring_fleet.value()->fleet_stats().ring;
  const auto ecall_stats = ecall_fleet.value()->fleet_stats().ring;
  EXPECT_EQ(ring_stats.jobs_switchless, 3u * 6u);
  EXPECT_EQ(ring_stats.fallback_ecalls, 0u);
  EXPECT_EQ(ecall_stats.jobs_switchless, 0u);
  EXPECT_EQ(ecall_stats.fallback_ecalls, 0u);  // switchless off: plain ecalls
}

TEST_F(SwitchlessE2eTest, PausedFleetWorkersDegradeToEcallsMidStream) {
  auto options = fleet_options(true);
  options.proxy.switchless.pickup_patience = kMilli;  // degrade fast
  auto fleet = ProxyFleet::create(&engine_, authority_, options);
  ASSERT_TRUE(fleet.is_ok()) << fleet.status().to_string();

  core::ClientBroker broker(*fleet.value(), authority_,
                            fleet.value()->measurement(), 21);
  auto warm = broker.search("before the pause");
  ASSERT_TRUE(warm.is_ok()) << warm.status().to_string();

  // Park every worker's ring crew mid-stream: queries must keep answering
  // (via the fallback ecall), not hang behind the parked ring. A worker
  // mid-poll-pass may still drain one last job after the pause lands, so
  // wait for the park counters to confirm every crew re-parked before
  // asserting on the degraded burst.
  const auto parks_before = fleet.value()->fleet_stats().ring.worker_parks;
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    fleet.value()->worker_proxy(w)->pause_switchless_workers(true);
  }
  for (int i = 0; i < 2000 && fleet.value()->fleet_stats().ring.worker_parks <
                                  parks_before + fleet.value()->worker_count();
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 4; ++i) {
    auto result = broker.search("during pause " + std::to_string(i));
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  }
  const auto paused_stats = fleet.value()->fleet_stats().ring;
  EXPECT_GE(paused_stats.fallback_ecalls, 4u);

  // Unpause: traffic returns to the ring.
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    fleet.value()->worker_proxy(w)->pause_switchless_workers(false);
  }
  auto after = broker.search("after the pause");
  ASSERT_TRUE(after.is_ok()) << after.status().to_string();
}

}  // namespace
}  // namespace xsearch::net
