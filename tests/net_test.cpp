// TCP transport tests: sockets, framing, and the full networked deployment
// (ProxyServer + RemoteBroker over loopback).
#include <gtest/gtest.h>

#include <thread>

#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "net/frame.hpp"
#include "net/proxy_server.hpp"
#include "net/remote_broker.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"

namespace xsearch::net {
namespace {

// ---- sockets -----------------------------------------------------------------

TEST(TcpSocket, ConnectAndEcho) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  std::thread server([&] {
    auto stream = listener.value().accept();
    ASSERT_TRUE(stream.is_ok());
    auto data = stream.value().read_exact(5);
    ASSERT_TRUE(data.is_ok());
    ASSERT_TRUE(stream.value().write_all(data.value()).is_ok());
  });

  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ASSERT_TRUE(client.value().write_all(to_bytes("hello")).is_ok());
  auto echoed = client.value().read_exact(5);
  ASSERT_TRUE(echoed.is_ok());
  EXPECT_EQ(to_string(echoed.value()), "hello");
  server.join();
}

TEST(TcpSocket, ReadExactDetectsPeerClose) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto stream = listener.value().accept();
    ASSERT_TRUE(stream.is_ok());
    ASSERT_TRUE(stream.value().write_all(to_bytes("ab")).is_ok());
    // Stream destructor closes the connection after only 2 of 5 bytes.
  });
  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  const auto result = client.value().read_exact(5);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  server.join();
}

TEST(TcpSocket, ConnectToClosedPortFails) {
  // Bind + close to find a (very likely) dead port.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  EXPECT_FALSE(TcpStream::connect("127.0.0.1", port).is_ok());
}

TEST(TcpSocket, InvalidAddressRejected) {
  EXPECT_FALSE(TcpStream::connect("not-an-ip", 80).is_ok());
}

TEST(TcpSocket, CloseUnblocksAccept) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.value().close();
  });
  EXPECT_FALSE(listener.value().accept().is_ok());
  closer.join();
}

// ---- framing ------------------------------------------------------------------

TEST(Framing, RoundTrip) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto stream = listener.value().accept();
    ASSERT_TRUE(stream.is_ok());
    auto frame = read_frame(stream.value());
    ASSERT_TRUE(frame.is_ok());
    EXPECT_EQ(frame.value().type, FrameType::kQuery);
    ASSERT_TRUE(write_frame(stream.value(), FrameType::kQueryReply,
                            frame.value().payload)
                    .is_ok());
  });
  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(write_frame(client.value(), FrameType::kQuery, to_bytes("payload")).is_ok());
  auto reply = read_frame(client.value());
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().type, FrameType::kQueryReply);
  EXPECT_EQ(to_string(reply.value().payload), "payload");
  server.join();
}

TEST(Framing, EmptyPayloadAllowed) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto stream = listener.value().accept();
    ASSERT_TRUE(stream.is_ok());
    auto frame = read_frame(stream.value());
    ASSERT_TRUE(frame.is_ok());
    EXPECT_TRUE(frame.value().payload.empty());
  });
  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(write_frame(client.value(), FrameType::kHello, {}).is_ok());
  client.value().shutdown_write();
  server.join();
}

TEST(Framing, OversizedFrameRejectedBySender) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  const Bytes huge(kMaxFramePayload + 1, 0);
  EXPECT_FALSE(write_frame(client.value(), FrameType::kQuery, huge).is_ok());
}

TEST(Framing, GarbageLengthRejectedByReader) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread server([&] {
    auto stream = listener.value().accept();
    ASSERT_TRUE(stream.is_ok());
    // 0xFFFFFFFF length prefix.
    ASSERT_TRUE(stream.value().write_all(Bytes{0xff, 0xff, 0xff, 0xff}).is_ok());
  });
  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  EXPECT_FALSE(read_frame(client.value()).is_ok());
  server.join();
}

// ---- networked deployment -------------------------------------------------------

class NetworkedProxyTest : public ::testing::Test {
 protected:
  static dataset::QueryLog make_log() {
    dataset::SyntheticLogConfig config;
    config.num_users = 20;
    config.total_queries = 1500;
    config.vocab_size = 800;
    config.num_topics = 10;
    config.words_per_topic = 60;
    return dataset::generate_synthetic_log(config);
  }

  NetworkedProxyTest()
      : log_(make_log()),
        corpus_(log_, engine::CorpusConfig{.seed = 4, .num_documents = 800}),
        engine_(corpus_),
        authority_(to_bytes("net-test-root")),
        proxy_(&engine_, authority_, make_options()) {}

  static core::XSearchProxy::Options make_options() {
    core::XSearchProxy::Options options;
    options.k = 2;
    options.history_capacity = 5'000;
    return options;
  }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
  core::XSearchProxy proxy_;
};

TEST_F(NetworkedProxyTest, EndToEndSearchOverTcp) {
  auto server = ProxyServer::start(proxy_);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  RemoteBroker broker("127.0.0.1", server.value()->port(), authority_,
                      proxy_.measurement(), 1);
  const auto results = broker.search(log_.records()[3].text);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  server.value()->stop();
  EXPECT_EQ(server.value()->connections_served(), 1u);
}

TEST_F(NetworkedProxyTest, MultipleQueriesOneConnection) {
  auto server = ProxyServer::start(proxy_);
  ASSERT_TRUE(server.is_ok());
  RemoteBroker broker("127.0.0.1", server.value()->port(), authority_,
                      proxy_.measurement(), 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(broker.search(log_.records()[static_cast<std::size_t>(i)].text).is_ok())
        << "query " << i;
  }
  server.value()->stop();
  EXPECT_EQ(server.value()->connections_served(), 1u);
  EXPECT_EQ(proxy_.history_size(), 10u);
}

TEST_F(NetworkedProxyTest, ConcurrentRemoteClients) {
  auto server = ProxyServer::start(proxy_);
  ASSERT_TRUE(server.is_ok());
  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RemoteBroker broker("127.0.0.1", server.value()->port(), authority_,
                          proxy_.measurement(), static_cast<std::uint64_t>(10 + c));
      for (int i = 0; i < 5; ++i) {
        const auto& q = log_.records()[static_cast<std::size_t>(c * 5 + i)].text;
        if (!broker.search(q).is_ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.value()->stop();
  EXPECT_EQ(server.value()->connections_served(), kClients);
}

TEST_F(NetworkedProxyTest, WrongMeasurementRefusedOverTcp) {
  auto server = ProxyServer::start(proxy_);
  ASSERT_TRUE(server.is_ok());
  sgx::Measurement wrong{};
  wrong.fill(0xee);
  RemoteBroker broker("127.0.0.1", server.value()->port(), authority_, wrong, 3);
  const auto results = broker.search("query");
  EXPECT_FALSE(results.is_ok());
  EXPECT_EQ(results.status().code(), StatusCode::kPermissionDenied);
  server.value()->stop();
}

TEST_F(NetworkedProxyTest, MalformedFramesDoNotCrashServer) {
  auto server = ProxyServer::start(proxy_);
  ASSERT_TRUE(server.is_ok());

  // Garbage hello.
  {
    auto stream = TcpStream::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(stream.is_ok());
    ASSERT_TRUE(write_frame(stream.value(), FrameType::kHello, to_bytes("short")).is_ok());
    auto reply = read_frame(stream.value());
    ASSERT_TRUE(reply.is_ok());
    EXPECT_EQ(reply.value().type, FrameType::kError);
  }
  // Query without handshake.
  {
    auto stream = TcpStream::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(stream.is_ok());
    Bytes payload(16, 7);
    ASSERT_TRUE(write_frame(stream.value(), FrameType::kQuery, payload).is_ok());
    auto reply = read_frame(stream.value());
    ASSERT_TRUE(reply.is_ok());
    EXPECT_EQ(reply.value().type, FrameType::kError);
  }
  // The server still works afterwards.
  RemoteBroker broker("127.0.0.1", server.value()->port(), authority_,
                      proxy_.measurement(), 4);
  EXPECT_TRUE(broker.search(log_.records()[0].text).is_ok());
  server.value()->stop();
}

TEST_F(NetworkedProxyTest, StopIsIdempotent) {
  auto server = ProxyServer::start(proxy_);
  ASSERT_TRUE(server.is_ok());
  server.value()->stop();
  server.value()->stop();
}

}  // namespace
}  // namespace xsearch::net
