#include "dataset/aol.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace xsearch::dataset {
namespace {

class AolTest : public ::testing::Test {
 protected:
  void write_file(std::string_view content) {
    path_ = std::filesystem::temp_directory_path() / "xs_aol_test.txt";
    std::ofstream out(path_);
    out << content;
  }

  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  std::filesystem::path path_;
};

TEST(AolTimestamp, ParsesEpoch) {
  const auto ts = parse_aol_timestamp("1970-01-01 00:00:00");
  ASSERT_TRUE(ts.is_ok());
  EXPECT_EQ(ts.value(), 0);
}

TEST(AolTimestamp, ParsesKnownDate) {
  // 2006-03-01 00:00:00 UTC == 1141171200 (known value).
  const auto ts = parse_aol_timestamp("2006-03-01 00:00:00");
  ASSERT_TRUE(ts.is_ok());
  EXPECT_EQ(ts.value(), 1141171200);
}

TEST(AolTimestamp, TimeOfDayAdds) {
  const auto midnight = parse_aol_timestamp("2006-03-01 00:00:00");
  const auto later = parse_aol_timestamp("2006-03-01 01:02:03");
  ASSERT_TRUE(midnight.is_ok());
  ASSERT_TRUE(later.is_ok());
  EXPECT_EQ(later.value() - midnight.value(), 3723);
}

TEST(AolTimestamp, LeapYearHandled) {
  const auto feb28 = parse_aol_timestamp("2004-02-28 00:00:00");
  const auto mar01 = parse_aol_timestamp("2004-03-01 00:00:00");
  ASSERT_TRUE(feb28.is_ok());
  ASSERT_TRUE(mar01.is_ok());
  EXPECT_EQ(mar01.value() - feb28.value(), 2 * 86400);  // Feb 29 exists
}

TEST(AolTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_aol_timestamp("2006/03/01 00:00:00").is_ok());
  EXPECT_FALSE(parse_aol_timestamp("2006-03-01").is_ok());
  EXPECT_FALSE(parse_aol_timestamp("2006-13-01 00:00:00").is_ok());
  EXPECT_FALSE(parse_aol_timestamp("2006-03-01 25:00:00").is_ok());
  EXPECT_FALSE(parse_aol_timestamp("garbage").is_ok());
}

TEST_F(AolTest, LoadsBasicFile) {
  write_file(
      "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n"
      "217\tlottery numbers\t2006-03-01 11:58:51\t1\thttp://lotto.example\n"
      "217\tweather forecast\t2006-03-02 08:15:00\n"
      "1326\tcar insurance quotes\t2006-03-01 14:02:10\t3\thttp://cars.example\n");
  const auto log = load_aol_file(path_);
  ASSERT_TRUE(log.is_ok()) << log.status().to_string();
  EXPECT_EQ(log.value().size(), 3u);
  EXPECT_EQ(log.value().users(), (std::vector<UserId>{217, 1326}));
  EXPECT_EQ(log.value().queries_of(217),
            (std::vector<std::string>{"lottery numbers", "weather forecast"}));
}

TEST_F(AolTest, CollapsesClickthroughs) {
  write_file(
      "217\tlottery numbers\t2006-03-01 11:58:51\n"
      "217\tlottery numbers\t2006-03-01 11:59:02\t1\thttp://a.example\n"
      "217\tlottery numbers\t2006-03-01 11:59:30\t2\thttp://b.example\n"
      "217\tnew topic\t2006-03-01 12:10:00\n");
  const auto log = load_aol_file(path_);
  ASSERT_TRUE(log.is_ok());
  EXPECT_EQ(log.value().size(), 2u);  // three click rows collapse to one
}

TEST_F(AolTest, KeepsRepeatsWhenCollapseDisabled) {
  write_file(
      "217\tlottery numbers\t2006-03-01 11:58:51\n"
      "217\tlottery numbers\t2006-03-01 11:59:02\n");
  AolLoadOptions options;
  options.collapse_clickthroughs = false;
  const auto log = load_aol_file(path_, options);
  ASSERT_TRUE(log.is_ok());
  EXPECT_EQ(log.value().size(), 2u);
}

TEST_F(AolTest, FiltersShortQueries) {
  write_file(
      "1\t-\t2006-03-01 00:00:00\n"
      "1\tok query\t2006-03-01 00:00:01\n");
  const auto log = load_aol_file(path_);
  ASSERT_TRUE(log.is_ok());
  EXPECT_EQ(log.value().size(), 1u);
  EXPECT_EQ(log.value().records()[0].text, "ok query");
}

TEST_F(AolTest, MaxRecordsCap) {
  write_file(
      "1\tquery one\t2006-03-01 00:00:00\n"
      "2\tquery two\t2006-03-01 00:00:01\n"
      "3\tquery three\t2006-03-01 00:00:02\n");
  AolLoadOptions options;
  options.max_records = 2;
  const auto log = load_aol_file(path_, options);
  ASSERT_TRUE(log.is_ok());
  EXPECT_EQ(log.value().size(), 2u);
}

TEST_F(AolTest, RejectsMalformedRows) {
  write_file("justonefield\n");
  EXPECT_FALSE(load_aol_file(path_).is_ok());
  write_file("notanumber\tquery\t2006-03-01 00:00:00\n");
  EXPECT_FALSE(load_aol_file(path_).is_ok());
  write_file("1\tquery\tbad timestamp here\n");
  EXPECT_FALSE(load_aol_file(path_).is_ok());
}

TEST_F(AolTest, MissingFileFails) {
  EXPECT_FALSE(load_aol_file("/nonexistent/aol.txt").is_ok());
}

TEST_F(AolTest, RecordsSortedByTime) {
  write_file(
      "2\tlater query\t2006-03-02 00:00:00\n"
      "1\tearlier query\t2006-03-01 00:00:00\n");
  const auto log = load_aol_file(path_);
  ASSERT_TRUE(log.is_ok());
  EXPECT_EQ(log.value().records()[0].text, "earlier query");
}

}  // namespace
}  // namespace xsearch::dataset
