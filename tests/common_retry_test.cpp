// RetryPolicy/RetryState/RetryBudget unit tests: attempt accounting, the
// decorrelated-jitter backoff bounds, and the token bucket that damps retry
// storms.
#include "common/retry.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace xsearch {
namespace {

TEST(RetryState, DefaultPolicyRetriesExactlyOnce) {
  RetryState retry{RetryPolicy{}};  // max_attempts = 2
  EXPECT_TRUE(retry.should_retry());
  retry.note_attempt();  // first attempt failed
  EXPECT_TRUE(retry.should_retry());
  retry.note_attempt();  // the one retry failed too
  EXPECT_FALSE(retry.should_retry());
  EXPECT_EQ(retry.attempts(), 2u);
}

TEST(RetryState, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  RetryState retry(policy);
  retry.note_attempt();
  EXPECT_FALSE(retry.should_retry());
}

TEST(RetryState, BackoffStaysWithinPolicyBounds) {
  RetryPolicy policy;
  policy.initial_backoff = kMilli;
  policy.max_backoff = 8 * kMilli;
  RetryState retry(policy);
  Rng rng(42);
  // First sleep is drawn from [initial, 3 * initial]; every later sleep from
  // [initial, 3 * previous] — all capped at max_backoff.
  Nanos previous = policy.initial_backoff;
  for (int i = 0; i < 200; ++i) {
    const Nanos sleep = retry.next_backoff(rng);
    EXPECT_GE(sleep, policy.initial_backoff);
    EXPECT_LE(sleep, policy.max_backoff);
    Nanos hi = previous * 3;
    if (hi > policy.max_backoff) hi = policy.max_backoff;
    EXPECT_LE(sleep, hi < policy.initial_backoff ? policy.initial_backoff : hi);
    previous = sleep;
  }
}

TEST(RetryState, BackoffIsDeterministicPerSeed) {
  RetryPolicy policy;
  RetryState a(policy);
  RetryState b(policy);
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next_backoff(rng_a), b.next_backoff(rng_b));
  }
}

TEST(RetryBudget, StartsFullAndRefusesWhenDrained) {
  RetryBudget budget;  // capacity 10, starts full
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(budget.try_spend()) << "spend " << i;
  }
  EXPECT_FALSE(budget.try_spend());  // bucket empty: storm damping kicks in
}

TEST(RetryBudget, RequestsEarnBackFractionalTokens) {
  RetryBudget::Options options;
  options.capacity = 2.0;
  options.deposit_per_request = 0.5;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());
  // One request deposits half a token — not yet enough for a retry.
  budget.record_request();
  EXPECT_FALSE(budget.try_spend());
  budget.record_request();
  EXPECT_TRUE(budget.try_spend());
}

TEST(RetryBudget, DepositsClampAtCapacity) {
  RetryBudget::Options options;
  options.capacity = 1.0;
  options.deposit_per_request = 0.5;
  RetryBudget budget(options);
  for (int i = 0; i < 100; ++i) budget.record_request();
  EXPECT_DOUBLE_EQ(budget.tokens(), 1.0);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // capacity 1 means one retry in reserve
}

}  // namespace
}  // namespace xsearch
