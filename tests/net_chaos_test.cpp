// Deterministic wire-level chaos harness (ISSUE 8 acceptance suite).
//
// Three layers, bottom up:
//  * frame-level fault satellites — partial writes/reads, dropped and
//    garbage-corrupted frames, truncated/oversized headers, the slow-writer
//    body budget — each forced deterministically through a single-fault
//    FaultPlan (probability 1 for the targeted action);
//  * circuit breakers — the RemoteBroker's client-side breaker fast-fails
//    without wire I/O while open and recovers through half-open probes on an
//    injected clock; the XSearchProxy's engine-path breaker stops calling a
//    dead engine and recovers the same way;
//  * the end-to-end chaos run — broker → ProxyServer → ProxyFleet under a
//    seeded FaultPlan, for several seeds: every request completes within its
//    deadline with a typed outcome, duplicates stay inside the documented
//    at-least-once window, and once the plan is exhausted the path serves
//    cleanly again.
//
// Runs under ThreadSanitizer and AddressSanitizer in CI (labels: net, chaos).
#include "net/chaos.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/circuit_breaker.hpp"
#include "common/deadline.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "net/frame.hpp"
#include "net/proxy_fleet.hpp"
#include "net/proxy_server.hpp"
#include "net/remote_broker.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"
#include "test_util.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {
namespace {

// --- harness helpers ---------------------------------------------------------

/// A connected loopback stream pair (client side, server side).
struct Loopback {
  TcpStream client;
  TcpStream server;
};

Loopback make_loopback() {
  auto listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.is_ok()) << listener.status().to_string();
  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  EXPECT_TRUE(client.is_ok()) << client.status().to_string();
  auto server = listener.value().accept();
  EXPECT_TRUE(server.is_ok()) << server.status().to_string();
  return Loopback{std::move(client).value(), std::move(server).value()};
}

/// A plan whose single fault is `action` with certainty — the deterministic
/// building block of the frame-level satellites.
std::shared_ptr<FaultPlan> single_fault_plan(FaultAction action,
                                             std::uint64_t seed = 3) {
  FaultPlan::Options options;
  options.seed = seed;
  options.fault_ops = 1;
  options.delay_p = 0;
  options.max_delay = 0;
  options.partial_p = 0;
  options.drop_p = 0;
  options.reset_p = 0;
  options.garbage_p = 0;
  switch (action) {
    case FaultAction::kDelay:
      options.delay_p = 1.0;
      options.max_delay = kMilli;
      break;
    case FaultAction::kPartialThenReset:
      options.partial_p = 1.0;
      break;
    case FaultAction::kDrop:
      options.drop_p = 1.0;
      break;
    case FaultAction::kReset:
      options.reset_p = 1.0;
      break;
    case FaultAction::kGarbage:
      options.garbage_p = 1.0;
      break;
    case FaultAction::kPass:
      options.fault_ops = 0;
      break;
  }
  return std::make_shared<FaultPlan>(options);
}

// --- frame-level satellites --------------------------------------------------

TEST(ChaosFrame, V2RoundTripPreservesBudget) {
  Loopback wire = make_loopback();
  const Bytes payload = to_bytes("budgeted query record");
  FrameWriteOptions write_options;
  write_options.carry_budget = true;
  write_options.budget_millis = 1234;
  ASSERT_TRUE(write_frame(wire.client, FrameType::kQuery, payload, write_options)
                  .is_ok());
  auto frame = read_frame(wire.server);
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  EXPECT_TRUE(frame.value().v2);
  EXPECT_EQ(frame.value().budget_millis, 1234u);
  EXPECT_EQ(frame.value().type, FrameType::kQuery);
  EXPECT_EQ(frame.value().payload, payload);
}

TEST(ChaosFrame, V1FrameReadsAsNoDeadline) {
  Loopback wire = make_loopback();
  ASSERT_TRUE(write_frame(wire.client, FrameType::kQuery, to_bytes("q")).is_ok());
  auto frame = read_frame(wire.server);
  ASSERT_TRUE(frame.is_ok());
  EXPECT_FALSE(frame.value().v2);
  EXPECT_EQ(frame.value().budget_millis, 0u);  // wire meaning: no deadline
}

TEST(ChaosFrame, TruncatedFrameIsDataLoss) {
  Loopback wire = make_loopback();
  // Header promises a 10-byte body, then the peer dies mid-frame.
  const Bytes header = {0x00, 0x00, 0x00, 0x0a};
  ASSERT_TRUE(wire.client.write_all(header).is_ok());
  wire.client.shutdown_both();
  auto frame = read_frame(wire.server);
  ASSERT_FALSE(frame.is_ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
}

TEST(ChaosFrame, ZeroAndOversizedLengthsAreDataLoss) {
  {
    Loopback wire = make_loopback();
    const Bytes zero = {0x00, 0x00, 0x00, 0x00};
    ASSERT_TRUE(wire.client.write_all(zero).is_ok());
    auto frame = read_frame(wire.server);
    ASSERT_FALSE(frame.is_ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  }
  {
    Loopback wire = make_loopback();
    // Length far past the 4 MiB cap: refused before any allocation.
    const Bytes huge = {0x7f, 0xff, 0xff, 0xff};
    ASSERT_TRUE(wire.client.write_all(huge).is_ok());
    auto frame = read_frame(wire.server);
    ASSERT_FALSE(frame.is_ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  }
}

TEST(ChaosFrame, BodyBudgetBoundsSlowWriter) {
  Loopback wire = make_loopback();
  // The anti-slowloris knob: a peer that starts a frame must finish it.
  const Bytes header = {0x00, 0x00, 0x00, 0x20};  // promises 32 bytes, sends 0
  ASSERT_TRUE(wire.client.write_all(header).is_ok());
  FrameReadOptions read_options;
  read_options.body_budget = 30 * kMilli;
  const auto started = std::chrono::steady_clock::now();
  auto frame = read_frame(wire.server, read_options);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(frame.is_ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(3));  // bounded, not a hang
}

TEST(ChaosSocketFaults, PartialWriteResetsBothSides) {
  Loopback wire = make_loopback();
  ChaosSocket chaotic(std::move(wire.client),
                      single_fault_plan(FaultAction::kPartialThenReset));
  // The header write moves only half its bytes, then the connection resets:
  // the writer sees a typed transport error...
  const Status written =
      write_frame(chaotic, FrameType::kQuery, to_bytes("doomed"));
  ASSERT_FALSE(written.is_ok());
  EXPECT_EQ(written.code(), StatusCode::kUnavailable);
  // ...and the reader a truncated frame (EOF mid-header), never a hang.
  FrameReadOptions read_options;
  read_options.io_deadline = Deadline::after(kSecond);
  auto frame = read_frame(wire.server, read_options);
  ASSERT_FALSE(frame.is_ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
}

TEST(ChaosSocketFaults, PartialReadResetsAndFailsTyped) {
  Loopback wire = make_loopback();
  ASSERT_TRUE(write_frame(wire.client, FrameType::kQuery, to_bytes("intact"))
                  .is_ok());
  ChaosSocket chaotic(std::move(wire.server),
                      single_fault_plan(FaultAction::kPartialThenReset));
  auto frame = read_frame(chaotic);
  ASSERT_FALSE(frame.is_ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

TEST(ChaosSocketFaults, DroppedWriteIsSilentUntilTheReadDeadline) {
  Loopback wire = make_loopback();
  ChaosSocket chaotic(std::move(wire.client),
                      single_fault_plan(FaultAction::kDrop));
  // The insidious fault: the frame header vanishes in flight and the WRITER
  // sees success — only a read deadline can surface it.
  ASSERT_TRUE(write_frame(chaotic, FrameType::kQuery, to_bytes("vanishes"))
                  .is_ok());
  FrameReadOptions read_options;
  read_options.io_deadline = Deadline::after(100 * kMilli);
  auto frame = read_frame(wire.server, read_options);
  ASSERT_FALSE(frame.is_ok());
  // The payload bytes arrive without their header: the reader misparses
  // them as an out-of-range length (DATA_LOSS) or times out waiting for
  // bytes that never come — typed either way, never a hang.
  EXPECT_TRUE(frame.status().code() == StatusCode::kDataLoss ||
              frame.status().code() == StatusCode::kDeadlineExceeded)
      << frame.status().to_string();
}

TEST(ChaosSocketFaults, GarbageCorruptionNeverReadsAsTheOriginalFrame) {
  Loopback wire = make_loopback();
  ChaosSocket chaotic(std::move(wire.client),
                      single_fault_plan(FaultAction::kGarbage));
  const Bytes payload = to_bytes("pristine payload");
  ASSERT_TRUE(write_frame(chaotic, FrameType::kQuery, payload).is_ok());
  FrameReadOptions read_options;
  read_options.io_deadline = Deadline::after(100 * kMilli);
  auto frame = read_frame(wire.server, read_options);
  if (frame.is_ok()) {
    // The corruption hit the type byte or spilled into the payload: the
    // frame must not round-trip unchanged (integrity is the secure
    // channel's job — the framing layer just must not mask the damage).
    EXPECT_TRUE(frame.value().type != FrameType::kQuery ||
                frame.value().payload != payload);
  } else {
    // The corruption hit the length word: typed failure, not a hang.
    EXPECT_TRUE(frame.status().code() == StatusCode::kDataLoss ||
                frame.status().code() == StatusCode::kDeadlineExceeded)
        << frame.status().to_string();
  }
}

// --- client-side circuit breaker --------------------------------------------

core::XSearchProxy::Options proxy_only_options() {
  core::XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 4096;
  options.contact_engine = false;
  return options;
}

TEST(ChaosBreaker, OpenBreakerFastFailsWithoutWireIoThenRecovers) {
  sgx::AttestationAuthority authority(to_bytes("chaos-breaker-root"));
  core::XSearchProxy proxy(nullptr, authority, proxy_only_options());
  auto server = ProxyServer::start(proxy);
  ASSERT_TRUE(server.is_ok());
  const std::uint16_t port = server.value()->port();

  // Breaker on an injected clock: the test steps the cooldown by hand.
  Nanos fake_now = 0;
  RemoteBroker::Options options;
  options.request_budget = 2 * kSecond;
  options.breaker_enabled = true;
  options.breaker.window = 8;
  options.breaker.min_samples = 2;
  options.breaker.failure_ratio = 0.5;
  options.breaker.open_cooldown = 50 * kMilli;
  options.breaker.half_open_probes = 1;
  options.breaker.now = [&fake_now] { return fake_now; };
  RemoteBroker broker("127.0.0.1", port, authority, proxy.measurement(), 5,
                      options);
  ASSERT_TRUE(broker.search("baseline through a healthy proxy").is_ok());

  // Proxy goes away: both attempts of the next call fail, tripping the
  // breaker (window min_samples=2, ratio 0.5).
  server.value()->stop();
  EXPECT_FALSE(broker.search("server is down").is_ok());
  EXPECT_EQ(broker.breaker_stats().state, CircuitBreaker::State::kOpen);
  EXPECT_GE(broker.breaker_stats().trips, 1u);

  // Open state: fail fast with a typed verdict and ZERO wire activity.
  const std::uint64_t frames_before = broker.frames_sent();
  auto rejected = broker.search("must not touch the wire");
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUpstreamDown);
  EXPECT_NE(rejected.status().message().find("circuit breaker open"),
            std::string::npos);
  EXPECT_EQ(broker.frames_sent(), frames_before);
  EXPECT_GE(broker.breaker_stats().rejected, 1u);

  // The proxy returns on the same port; stepping the clock past the
  // cooldown admits half-open probes, and the first success closes the
  // breaker (half_open_probes = 1).
  auto revived = ProxyServer::start(proxy, port);
  ASSERT_TRUE(revived.is_ok()) << revived.status().to_string();
  bool recovered = false;
  for (int i = 0; i < 5 && !recovered; ++i) {
    fake_now += options.breaker.open_cooldown;
    recovered = broker.search("recovery probe " + std::to_string(i)).is_ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(broker.breaker_stats().state, CircuitBreaker::State::kClosed);
  revived.value()->stop();
}

// --- engine-path circuit breaker ---------------------------------------------

TEST(ChaosEngineBreaker, DeadEngineTripsBreakerAndHalfOpenProbesRecover) {
  dataset::SyntheticLogConfig log_config;
  log_config.num_users = 10;
  log_config.total_queries = 300;
  log_config.vocab_size = 400;
  log_config.num_topics = 6;
  log_config.words_per_topic = 40;
  const dataset::QueryLog log = dataset::generate_synthetic_log(log_config);
  const engine::Corpus corpus(log,
                              engine::CorpusConfig{.seed = 4, .num_documents = 200});
  const engine::SearchEngine engine(corpus);
  sgx::AttestationAuthority authority(to_bytes("engine-breaker-root"));

  // Engine outage switch + call counter, injected through the host-side
  // fault hook (the same seam the degraded bench drives via FaultPlan).
  auto engine_down = std::make_shared<std::atomic<bool>>(true);
  auto engine_calls = std::make_shared<std::atomic<std::uint64_t>>(0);

  Nanos fake_now = 0;
  core::XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 4096;
  options.engine_breaker_enabled = true;
  options.engine_breaker.window = 8;
  options.engine_breaker.min_samples = 2;
  options.engine_breaker.failure_ratio = 0.5;
  options.engine_breaker.open_cooldown = 50 * kMilli;
  options.engine_breaker.half_open_probes = 1;
  options.engine_breaker.now = [&fake_now] { return fake_now; };
  options.engine_fault_hook = [engine_down, engine_calls]() -> Status {
    engine_calls->fetch_add(1, std::memory_order_relaxed);
    if (engine_down->load(std::memory_order_relaxed)) {
      return unavailable("chaos: engine outage");
    }
    return Status::ok();
  };
  core::XSearchProxy proxy(&engine, authority, options);
  core::ClientBroker broker(proxy, authority, proxy.measurement(), 11);
  ASSERT_TRUE(broker.connect().is_ok());

  // Engine down: queries fail with a SEALED per-query error (the record was
  // opened and executed — exactly-once still holds), and the breaker trips.
  int outage_queries = 0;
  while (proxy.engine_breaker_stats().state != CircuitBreaker::State::kOpen &&
         outage_queries < 8) {
    auto results = broker.search(log.records()[outage_queries].text);
    EXPECT_FALSE(results.is_ok());
    ++outage_queries;
  }
  EXPECT_EQ(proxy.engine_breaker_stats().state, CircuitBreaker::State::kOpen);
  EXPECT_GE(proxy.engine_breaker_stats().trips, 1u);

  // Open: round trips fail fast WITHOUT invoking the engine path at all —
  // the hook (which sits before the engine) stops being called.
  const std::uint64_t calls_at_trip = engine_calls->load();
  for (int i = 0; i < 3; ++i) {
    auto results = broker.search(log.records()[20 + i].text);
    EXPECT_FALSE(results.is_ok());
    EXPECT_NE(results.status().message().find("circuit breaker open"),
              std::string::npos);
  }
  EXPECT_EQ(engine_calls->load(), calls_at_trip);
  EXPECT_GE(proxy.engine_breaker_stats().rejected, 1u);

  // Engine heals; past the cooldown the half-open probe goes through the
  // real engine and the breaker closes.
  engine_down->store(false, std::memory_order_relaxed);
  bool recovered = false;
  for (int i = 0; i < 5 && !recovered; ++i) {
    fake_now += options.engine_breaker.open_cooldown;
    recovered = broker.search(log.records()[40 + i].text).is_ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(proxy.engine_breaker_stats().state, CircuitBreaker::State::kClosed);
}

// --- end-to-end chaos run ----------------------------------------------------

// The acceptance run (ISSUE 8): for each seed, a broker with an end-to-end
// request budget drives a ProxyServer + two-worker ProxyFleet through a
// ChaosSocket until the fault plan is exhausted. Invariants:
//  * every call returns within its budget (plus bounded slack) with either
//    results or a typed error — no hangs;
//  * executions on the fleet stay inside the documented at-least-once
//    envelope (each execution is a success, a counted at-least-once retry,
//    or the delivered final attempt of a failure);
//  * after the last injected fault, the path serves cleanly again.
TEST(ChaosEndToEnd, SeededFaultPlansNeverHangAndRecoverCleanly) {
  sgx::AttestationAuthority authority(to_bytes("chaos-e2e-root"));
  for (const std::uint64_t seed : {7u, 21u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    ProxyFleet::Options fleet_options;
    fleet_options.workers = 2;
    fleet_options.proxy = proxy_only_options();
    auto fleet = ProxyFleet::create(nullptr, authority, fleet_options);
    ASSERT_TRUE(fleet.is_ok()) << fleet.status().to_string();

    ProxyServer::Options server_options;
    server_options.workers = 4;
    server_options.queue_timeout = 500 * kMilli;
    server_options.io_budget = 500 * kMilli;
    auto server = ProxyServer::start(*fleet.value(), 0, server_options);
    ASSERT_TRUE(server.is_ok());

    FaultPlan::Options plan_options;
    plan_options.seed = seed;
    plan_options.fault_ops = 12;
    auto plan = std::make_shared<FaultPlan>(plan_options);

    RemoteBroker::Options broker_options;
    broker_options.request_budget = 2 * kSecond;
    broker_options.connect_budget = kSecond;
    broker_options.retry.max_attempts = 3;
    broker_options.retry.initial_backoff = kMilli;
    broker_options.retry.max_backoff = 10 * kMilli;
    broker_options.retry_budget.capacity = 1000.0;  // chaos phase may retry a lot
    broker_options.wrap_stream = [plan](TcpStream stream) {
      return std::make_unique<ChaosSocket>(std::move(stream), plan);
    };
    RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                        fleet.value()->measurement(), seed, broker_options);

    int successes = 0;
    int failures = 0;
    int calls = 0;
    while (!plan->exhausted() && calls < 200) {
      const auto started = std::chrono::steady_clock::now();
      auto results = broker.search("chaos seed " + std::to_string(seed) +
                                   " call " + std::to_string(calls));
      const auto elapsed = std::chrono::steady_clock::now() - started;
      // Budget 2s, up to 3 attempts sharing it, backoff capped by the
      // remaining budget: generous slack, but never a hang.
      EXPECT_LT(elapsed, std::chrono::seconds(10));
      if (results.is_ok()) {
        ++successes;
      } else {
        ++failures;
        EXPECT_NE(results.status().code(), StatusCode::kOk);
      }
      ++calls;
    }
    EXPECT_TRUE(plan->exhausted()) << "only " << plan->faults_injected()
                                   << " faults injected in " << calls << " calls";

    // Recovery window: the plan passes everything now, so the path must
    // serve every request (transparently re-handshaking off any wreckage
    // the last fault left behind).
    for (int i = 0; i < 5; ++i) {
      auto results = broker.search("recovery " + std::to_string(i));
      EXPECT_TRUE(results.is_ok()) << results.status().to_string();
      if (results.is_ok()) ++successes;
    }

    // Duplicate envelope: every history entry on the fleet is one executed
    // query. Each execution is (a) the success of a call, (b) covered by a
    // counted at-least-once retry, or (c) the delivered final attempt of a
    // failed call — nothing executes outside that envelope.
    std::size_t executed = 0;
    for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
      executed += fleet.value()->worker_history_depth(w);
    }
    EXPECT_GE(executed, static_cast<std::size_t>(successes));
    EXPECT_LE(executed,
              static_cast<std::size_t>(successes) +
                  static_cast<std::size_t>(failures) +
                  broker.at_least_once_retries());

    server.value()->stop();
  }
}

// Switchless chaos case: every enclave's ring workers are parked mid-burst.
// The fault is invisible to the wire — frames flow, the proxy answers — so
// the only acceptable behavior is the submit path degrading to the plain
// ecall fallback within its pickup patience. Requests must keep completing
// within budget (no hang behind the parked ring), and unpausing must return
// traffic to the exitless path.
TEST(ChaosEndToEnd, ParkedSwitchlessWorkersDegradeToEcallsNotHangs) {
  sgx::AttestationAuthority authority(to_bytes("chaos-switchless-root"));

  ProxyFleet::Options fleet_options;
  fleet_options.workers = 2;
  fleet_options.proxy = proxy_only_options();
  fleet_options.proxy.switchless.enabled = true;
  fleet_options.proxy.switchless.ring_depth = 8;
  fleet_options.proxy.switchless.workers = 1;
  fleet_options.proxy.switchless.pickup_patience = 5 * kMilli;
  auto fleet = ProxyFleet::create(nullptr, authority, fleet_options);
  ASSERT_TRUE(fleet.is_ok()) << fleet.status().to_string();

  ProxyServer::Options server_options;
  server_options.workers = 4;
  server_options.queue_timeout = 500 * kMilli;
  server_options.io_budget = 500 * kMilli;
  auto server = ProxyServer::start(*fleet.value(), 0, server_options);
  ASSERT_TRUE(server.is_ok());

  RemoteBroker::Options broker_options;
  broker_options.request_budget = 2 * kSecond;
  broker_options.connect_budget = kSecond;
  RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                      fleet.value()->measurement(), 33, broker_options);

  // Warm burst: the ring is live, queries ride it.
  for (int i = 0; i < 6; ++i) {
    auto results = broker.search("warm burst " + std::to_string(i));
    ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  }
  const auto warm = fleet.value()->fleet_stats().ring;
  EXPECT_GE(warm.jobs_switchless, 1u);

  // Park every worker's ring crew mid-burst. A crew mid-poll-pass can still
  // drain one last job after the pause lands; wait for the park counters to
  // confirm every crew re-parked before asserting on the degraded burst.
  const auto parks_before = fleet.value()->fleet_stats().ring.worker_parks;
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    fleet.value()->worker_proxy(w)->pause_switchless_workers(true);
  }
  for (int i = 0; i < 2000 && fleet.value()->fleet_stats().ring.worker_parks <
                                  parks_before + fleet.value()->worker_count();
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 6; ++i) {
    const auto started = std::chrono::steady_clock::now();
    auto results = broker.search("parked burst " + std::to_string(i));
    const auto elapsed = std::chrono::steady_clock::now() - started;
    ASSERT_TRUE(results.is_ok()) << results.status().to_string();
    EXPECT_LT(elapsed, std::chrono::seconds(10));  // degraded, never hung
  }
  const auto parked = fleet.value()->fleet_stats().ring;
  EXPECT_GE(parked.fallback_ecalls - warm.fallback_ecalls, 6u);
  EXPECT_EQ(parked.jobs_switchless, warm.jobs_switchless);

  // Unpause: traffic returns to the exitless path. Give the woken workers
  // a beat to sweep the cancelled carcasses out of the ring first.
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    fleet.value()->worker_proxy(w)->pause_switchless_workers(false);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 4; ++i) {
    auto results = broker.search("revived burst " + std::to_string(i));
    ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  }
  EXPECT_GT(fleet.value()->fleet_stats().ring.jobs_switchless,
            warm.jobs_switchless);

  server.value()->stop();
}

}  // namespace
}  // namespace xsearch::net
