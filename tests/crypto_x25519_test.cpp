#include "crypto/x25519.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.hpp"

namespace xsearch::crypto {
namespace {

X25519Key key_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  X25519Key k{};
  std::memcpy(k.data(), b.data(), k.size());
  return k;
}

// Scalars are secret-typed; points stay plain (they cross the wire anyway).
X25519Secret secret_from_hex(std::string_view hex) {
  X25519Secret::Raw raw = key_from_hex(hex);
  return X25519Secret::absorb(raw);
}

// RFC 7748 §5.2 test vector 1.
TEST(X25519, Rfc7748Vector1) {
  const auto scalar = secret_from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = key_from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(hex_encode(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 §5.2 test vector 2.
TEST(X25519, Rfc7748Vector2) {
  const auto scalar = secret_from_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point = key_from_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(hex_encode(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 §5.2 iterated test (1 iteration).
TEST(X25519, IteratedOnce) {
  const auto k = key_from_hex(
      "0900000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(hex_encode(x25519(X25519Secret(k), k)),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

// RFC 7748 §5.2 iterated test (1000 iterations).
TEST(X25519, IteratedThousandTimes) {
  auto k = key_from_hex(
      "0900000000000000000000000000000000000000000000000000000000000000");
  auto u = k;
  for (int i = 0; i < 1000; ++i) {
    const auto next = x25519(X25519Secret(k), u);
    u = k;
    k = next;
  }
  EXPECT_EQ(hex_encode(k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

// RFC 7748 §6.1 Diffie–Hellman vectors.
TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_priv = secret_from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = secret_from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pub = x25519_public_key(alice_priv);
  const auto bob_pub = x25519_public_key(bob_priv);
  EXPECT_EQ(hex_encode(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex_encode(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto shared_alice = x25519(alice_priv, bob_pub);
  const auto shared_bob = x25519(bob_priv, alice_pub);
  EXPECT_EQ(shared_alice, shared_bob);
  EXPECT_EQ(hex_encode(shared_alice),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedSecretAgreementRandomKeys) {
  // Property: DH(a, B) == DH(b, A) for many deterministic "random" seeds.
  for (std::uint8_t i = 1; i <= 10; ++i) {
    X25519Key seed_a{};
    X25519Key seed_b{};
    seed_a.fill(i);
    seed_b.fill(static_cast<std::uint8_t>(i + 100));
    const auto a = x25519_keypair_from_seed(X25519Secret(seed_a));
    const auto b = x25519_keypair_from_seed(X25519Secret(seed_b));
    EXPECT_EQ(x25519(a.private_key, b.public_key), x25519(b.private_key, a.public_key));
  }
}

TEST(X25519, ClampingMakesSeedsEquivalent) {
  // Seeds that differ only in clamped bits produce identical key pairs.
  X25519Key seed{};
  seed.fill(0x42);
  auto kp1 = x25519_keypair_from_seed(X25519Secret(seed));
  X25519Key seed2 = seed;
  seed2[0] |= 7;     // low bits cleared by clamping
  seed2[31] |= 128;  // top bit cleared by clamping
  auto kp2 = x25519_keypair_from_seed(X25519Secret(seed2));
  EXPECT_EQ(kp1.public_key, kp2.public_key);
}

TEST(X25519, PublicKeyDeterministic) {
  X25519Key seed{};
  seed.fill(9);
  EXPECT_EQ(x25519_keypair_from_seed(X25519Secret(seed)).public_key,
            x25519_keypair_from_seed(X25519Secret(seed)).public_key);
}

TEST(X25519, DifferentSeedsDifferentPublicKeys) {
  X25519Key s1{}, s2{};
  s1.fill(1);
  s2.fill(2);
  EXPECT_NE(x25519_keypair_from_seed(X25519Secret(s1)).public_key,
            x25519_keypair_from_seed(X25519Secret(s2)).public_key);
}

}  // namespace
}  // namespace xsearch::crypto
