#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace xsearch {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.value_at_quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  // Within bucket precision (~1%).
  EXPECT_NEAR(static_cast<double>(h.value_at_quantile(0.5)), 1000.0, 10.0);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.value_at_quantile(0.0), 0);
  EXPECT_EQ(h.value_at_quantile(1.0), 100);
  EXPECT_NEAR(static_cast<double>(h.value_at_quantile(0.5)), 50, 1);
}

TEST(Histogram, QuantilesOrdered) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.record(static_cast<std::int64_t>(rng.uniform(10'000'000)));
  }
  EXPECT_LE(h.value_at_quantile(0.1), h.value_at_quantile(0.5));
  EXPECT_LE(h.value_at_quantile(0.5), h.value_at_quantile(0.9));
  EXPECT_LE(h.value_at_quantile(0.9), h.value_at_quantile(0.999));
  EXPECT_LE(h.value_at_quantile(0.999), h.max());
}

TEST(Histogram, RelativePrecisionAboutOnePercent) {
  Histogram h;
  const std::int64_t value = 123'456'789;
  h.record(value);
  const auto p50 = static_cast<double>(h.value_at_quantile(0.5));
  EXPECT_NEAR(p50, static_cast<double>(value), static_cast<double>(value) * 0.01);
}

TEST(Histogram, UniformMedian) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 200000; ++i) {
    h.record(static_cast<std::int64_t>(rng.uniform(1'000'000)));
  }
  EXPECT_NEAR(static_cast<double>(h.value_at_quantile(0.5)), 500'000.0, 20'000.0);
  EXPECT_NEAR(h.mean(), 500'000.0, 5'000.0);
}

TEST(Histogram, RecordNEquivalentToLoop) {
  Histogram a, b;
  a.record_n(777, 1000);
  for (int i = 0; i < 1000; ++i) b.record(777);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.value_at_quantile(0.5), b.value_at_quantile(0.5));
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.record_n(100, 500);
  b.record_n(1'000'000, 500);
  a.merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_GE(a.max(), 1'000'000);
  EXPECT_LE(a.value_at_quantile(0.25), 110);
  EXPECT_GT(a.value_at_quantile(0.95), 900'000);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record_n(42, 42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SummaryContainsFields) {
  Histogram h;
  h.record(1'000'000);
  const std::string s = h.summary(1e6, "ms");
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("ms"), std::string::npos);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  const std::int64_t big = std::int64_t{1} << 45;
  h.record(big);
  EXPECT_NEAR(static_cast<double>(h.value_at_quantile(1.0)),
              static_cast<double>(big), static_cast<double>(big) * 0.01);
}

// The recovery bench compares p99-across-respawn numbers, so the quantile
// edge behaviour is pinned here: empty histograms, the exact q=0/q=1
// answers, out-of-range clamping, and single-value degenerate cases.

TEST(Histogram, EmptyReturnsZeroForEveryQuantile) {
  Histogram h;
  for (const double q : {-1.0, 0.0, 0.25, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(h.value_at_quantile(q), 0) << "q=" << q;
  }
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(99.0), 0);
  EXPECT_EQ(h.percentile(100.0), 0);
}

TEST(Histogram, QuantileZeroIsExactMinimum) {
  // Regression: q=0 used to return the *upper edge* of the minimum's
  // bucket — above min() by up to the ~1% bucket width once values leave
  // the exact range.
  Histogram h;
  h.record(1000);
  h.record(2000);
  EXPECT_EQ(h.value_at_quantile(0.0), 1000);
  EXPECT_EQ(h.value_at_quantile(0.0), h.min());
}

TEST(Histogram, QuantileOneIsExactMaximum) {
  Histogram h;
  h.record(123);
  h.record(123'456'789);
  EXPECT_EQ(h.value_at_quantile(1.0), 123'456'789);
  EXPECT_EQ(h.value_at_quantile(1.0), h.max());
  EXPECT_EQ(h.percentile(100.0), h.max());
}

TEST(Histogram, OutOfRangeQuantilesClampToTheEdges) {
  Histogram h;
  h.record(10);
  h.record(1'000'000);
  EXPECT_EQ(h.value_at_quantile(-0.5), h.value_at_quantile(0.0));
  EXPECT_EQ(h.value_at_quantile(1.5), h.value_at_quantile(1.0));
}

TEST(Histogram, SingleValueAnswersEveryQuantileWithThatValue) {
  Histogram h;
  h.record(777'777);
  EXPECT_EQ(h.value_at_quantile(0.0), 777'777);
  EXPECT_EQ(h.value_at_quantile(1.0), 777'777);
  // Interior quantiles stay within bucket precision and never exceed max.
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(h.value_at_quantile(q), h.max()) << "q=" << q;
    EXPECT_GE(h.value_at_quantile(q), h.min()) << "q=" << q;
  }
}

TEST(Histogram, QuantilesNeverExceedRecordedRange) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    h.record(static_cast<std::int64_t>(rng.uniform(1'000'000'000)));
  }
  double previous = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const auto v = static_cast<double>(h.value_at_quantile(q));
    EXPECT_GE(v, static_cast<double>(h.min()));
    EXPECT_LE(v, static_cast<double>(h.max()));
    EXPECT_GE(v, previous) << "quantiles must be monotone, q=" << q;
    previous = v;
  }
}

}  // namespace
}  // namespace xsearch
