#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"

namespace xsearch::crypto {
namespace {

std::string digest_hex(ByteSpan data) {
  const Sha256Digest d = Sha256::hash(data);
  return hex_encode(d);
}

// FIPS 180-4 / NIST example vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const std::string a(1'000'000, 'a');
  EXPECT_EQ(digest_hex(to_bytes(a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly";
  Sha256 ctx;
  // Feed in awkward chunk sizes to exercise buffering.
  const Bytes bytes = to_bytes(msg);
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 3, 7, 13, 64, 100};
  std::size_t ci = 0;
  while (off < bytes.size()) {
    const std::size_t n = std::min(chunks[ci % 6], bytes.size() - off);
    ctx.update(ByteSpan(bytes.data() + off, n));
    off += n;
    ++ci;
  }
  EXPECT_EQ(ctx.finalize(), Sha256::hash(bytes));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding at every length around the 64-byte block boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 ctx;
    ctx.update(to_bytes(msg));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(to_bytes(msg))) << "len=" << len;
  }
}

TEST(Sha256, ResetReusesContext) {
  Sha256 ctx;
  ctx.update(to_bytes("garbage"));
  (void)ctx.finalize();
  ctx.reset();
  ctx.update(to_bytes("abc"));
  EXPECT_EQ(hex_encode(ctx.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DifferentInputsDifferentDigests) {
  EXPECT_NE(Sha256::hash(to_bytes("a")), Sha256::hash(to_bytes("b")));
  EXPECT_NE(Sha256::hash({}), Sha256::hash(Bytes{0}));
}

}  // namespace
}  // namespace xsearch::crypto
