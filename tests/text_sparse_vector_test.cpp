#include "text/sparse_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "text/vocabulary.hpp"

namespace xsearch::text {
namespace {

TEST(Vocabulary, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.intern("apple");
  EXPECT_EQ(v.intern("apple"), a);
  EXPECT_EQ(v.size(), 1u);
}

TEST(Vocabulary, DistinctTermsGetDistinctIds) {
  Vocabulary v;
  EXPECT_NE(v.intern("apple"), v.intern("banana"));
  EXPECT_EQ(v.size(), 2u);
}

TEST(Vocabulary, LookupUnknownFails) {
  Vocabulary v;
  EXPECT_FALSE(v.lookup("ghost").has_value());
}

TEST(Vocabulary, TermRoundTrip) {
  Vocabulary v;
  const TermId id = v.intern("query");
  EXPECT_EQ(v.term(id), "query");
}

TEST(Vocabulary, LookupAllSkipsUnknown) {
  Vocabulary v;
  (void)v.intern("known");
  const auto ids = v.lookup_all(std::vector<std::string>{"known", "unknown"});
  EXPECT_EQ(ids.size(), 1u);
}

TEST(SparseVector, EmptyHasZeroNorm) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

TEST(SparseVector, TermFrequencyMergesDuplicates) {
  const auto v = SparseVector::term_frequency({3, 1, 3, 3});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.entries()[0].term, 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].weight, 1.0);
  EXPECT_EQ(v.entries()[1].term, 3u);
  EXPECT_DOUBLE_EQ(v.entries()[1].weight, 3.0);
}

TEST(SparseVector, NormComputed) {
  const auto v = SparseVector::from_pairs({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
}

TEST(SparseVector, DotDisjointIsZero) {
  const auto a = SparseVector::from_pairs({{0, 1.0}, {2, 1.0}});
  const auto b = SparseVector::from_pairs({{1, 1.0}, {3, 1.0}});
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
}

TEST(SparseVector, DotOverlap) {
  const auto a = SparseVector::from_pairs({{0, 2.0}, {1, 1.0}});
  const auto b = SparseVector::from_pairs({{1, 3.0}, {2, 5.0}});
  EXPECT_DOUBLE_EQ(a.dot(b), 3.0);
}

TEST(SparseVector, CosineIdenticalIsOne) {
  const auto a = SparseVector::from_pairs({{0, 1.0}, {5, 2.0}});
  EXPECT_NEAR(a.cosine(a), 1.0, 1e-12);
}

TEST(SparseVector, CosineOrthogonalIsZero) {
  const auto a = SparseVector::from_pairs({{0, 1.0}});
  const auto b = SparseVector::from_pairs({{1, 1.0}});
  EXPECT_DOUBLE_EQ(a.cosine(b), 0.0);
}

TEST(SparseVector, CosineScaleInvariant) {
  const auto a = SparseVector::from_pairs({{0, 1.0}, {1, 2.0}});
  const auto b = SparseVector::from_pairs({{0, 10.0}, {1, 20.0}});
  EXPECT_NEAR(a.cosine(b), 1.0, 1e-12);
}

TEST(SparseVector, CosineWithEmptyIsZero) {
  const auto a = SparseVector::from_pairs({{0, 1.0}});
  SparseVector empty;
  EXPECT_DOUBLE_EQ(a.cosine(empty), 0.0);
}

TEST(SparseVector, CosineSymmetric) {
  const auto a = SparseVector::from_pairs({{0, 1.0}, {1, 2.0}, {7, 0.5}});
  const auto b = SparseVector::from_pairs({{1, 3.0}, {7, 2.0}, {9, 1.0}});
  EXPECT_DOUBLE_EQ(a.cosine(b), b.cosine(a));
}

TEST(SparseVector, ZeroWeightEntriesDropped) {
  const auto v = SparseVector::from_pairs({{0, 0.0}, {1, 2.0}});
  EXPECT_EQ(v.size(), 1u);
}

TEST(SparseVector, AddScaledAccumulates) {
  auto a = SparseVector::from_pairs({{0, 1.0}});
  const auto b = SparseVector::from_pairs({{0, 1.0}, {1, 2.0}});
  a.add_scaled(b, 2.0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.entries()[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(a.entries()[1].weight, 4.0);
}

TEST(TfVector, BuildsFromText) {
  Vocabulary vocab;
  const auto v = tf_vector(vocab, "private web search web");
  EXPECT_EQ(v.size(), 3u);  // private, web(x2), search
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(TfVector, ConstVariantDropsUnknown) {
  Vocabulary vocab;
  (void)tf_vector(vocab, "known words");
  const auto v = tf_vector_const(vocab, "known unknown");
  EXPECT_EQ(v.size(), 1u);
}

TEST(ExponentialSmoothing, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(exponential_smoothing({}, 0.5), 0.0);
}

TEST(ExponentialSmoothing, SingleValue) {
  EXPECT_DOUBLE_EQ(exponential_smoothing({0.7}, 0.5), 0.7);
}

TEST(ExponentialSmoothing, WeightsLargestMost) {
  // With alpha = 0.5, {0, 1} ascending -> 0.5*1 + 0.5*0 = 0.5.
  EXPECT_DOUBLE_EQ(exponential_smoothing({0.0, 1.0}, 0.5), 0.5);
  // Order of the input must not matter (sorted internally).
  EXPECT_DOUBLE_EQ(exponential_smoothing({1.0, 0.0}, 0.5), 0.5);
}

TEST(ExponentialSmoothing, MonotoneInValues) {
  const double low = exponential_smoothing({0.1, 0.1, 0.1}, 0.5);
  const double high = exponential_smoothing({0.1, 0.1, 0.9}, 0.5);
  EXPECT_GT(high, low);
}

TEST(ExponentialSmoothing, BoundedByMax) {
  const double s = exponential_smoothing({0.2, 0.5, 0.9}, 0.5);
  EXPECT_LE(s, 0.9);
  EXPECT_GE(s, 0.2);
}

}  // namespace
}  // namespace xsearch::text
