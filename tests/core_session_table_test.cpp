// Session lifecycle subsystem tests: bounded SessionTable (LRU + idle-TTL
// eviction, EPC charge/release symmetry, per-session locking) and the
// proxy-level behaviors built on it — evicted/expired sessions answering
// NOT_FOUND and the regression test for the SecureChannel data race
// (one session hammered from many threads; run under TSan in CI).
#include "xsearch/session_table.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "crypto/x25519.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

// A matched initiator/responder channel pair over fixed keys; the table
// stores the responder half, tests drive it with the initiator half.
struct ChannelPair {
  crypto::SecureChannel client;
  crypto::SecureChannel server;
};

ChannelPair make_channel_pair(std::uint8_t tag) {
  crypto::X25519Key static_seed{};
  static_seed[0] = tag;
  static_seed[1] = 0xa5;
  crypto::X25519Key server_eph_seed{};
  server_eph_seed[0] = tag;
  server_eph_seed[1] = 0x5a;
  crypto::X25519Key client_eph_seed{};
  client_eph_seed[0] = tag;
  client_eph_seed[1] = 0xc3;

  const auto statics = crypto::x25519_keypair_from_seed(crypto::X25519Secret(static_seed));
  const auto server_eph = crypto::x25519_keypair_from_seed(crypto::X25519Secret(server_eph_seed));
  const auto client_eph = crypto::x25519_keypair_from_seed(crypto::X25519Secret(client_eph_seed));

  return ChannelPair{
      .client = crypto::SecureChannel::initiator(client_eph, statics.public_key,
                                                 server_eph.public_key),
      .server = crypto::SecureChannel::responder(statics, server_eph,
                                                 client_eph.public_key),
  };
}

crypto::SecureChannel make_server_channel(std::uint8_t tag) {
  return std::move(make_channel_pair(tag).server);
}

TEST(SessionTable, InsertAcquireRoundTrip) {
  SessionTable table({.capacity = 8, .shards = 2});
  auto pair = make_channel_pair(1);
  const std::uint64_t id = table.insert(std::move(pair.server));
  EXPECT_GT(id, 0u);
  EXPECT_EQ(table.size(), 1u);

  const Bytes record = pair.client.seal(to_bytes("hello enclave"));
  auto session = table.acquire(id);
  ASSERT_TRUE(static_cast<bool>(session));
  auto plain = session.channel().open(record);
  ASSERT_TRUE(plain.is_ok()) << plain.status().to_string();
  EXPECT_EQ(to_string(plain.value()), "hello enclave");
}

TEST(SessionTable, AcquireUnknownIsAMiss) {
  SessionTable table({.capacity = 4, .shards = 1});
  EXPECT_FALSE(static_cast<bool>(table.acquire(42)));
  EXPECT_FALSE(table.erase(42));
  EXPECT_EQ(table.stats().misses, 1u);
}

TEST(SessionTable, LruEvictionPrefersColdSessions) {
  SessionTable table({.capacity = 3, .shards = 1});
  const auto a = table.insert(make_server_channel(1));
  const auto b = table.insert(make_server_channel(2));
  const auto c = table.insert(make_server_channel(3));
  // Touch a: b becomes the coldest session.
  ASSERT_TRUE(static_cast<bool>(table.acquire(a)));
  const auto d = table.insert(make_server_channel(4));

  EXPECT_FALSE(static_cast<bool>(table.acquire(b)));  // evicted
  EXPECT_TRUE(static_cast<bool>(table.acquire(a)));
  EXPECT_TRUE(static_cast<bool>(table.acquire(c)));
  EXPECT_TRUE(static_cast<bool>(table.acquire(d)));
  const auto stats = table.stats();
  EXPECT_EQ(stats.evicted_lru, 1u);
  EXPECT_EQ(stats.active, 3u);
  EXPECT_EQ(stats.created, 4u);
}

TEST(SessionTable, IdleTtlExpiresSessions) {
  Nanos fake_now = 0;
  SessionTable table({.capacity = 8, .idle_ttl = 1000, .shards = 1},
                     /*epc=*/nullptr, [&] { return fake_now; });
  const auto a = table.insert(make_server_channel(1));

  fake_now = 500;
  EXPECT_TRUE(static_cast<bool>(table.acquire(a)));  // touch resets idleness

  fake_now = 1499;
  EXPECT_TRUE(static_cast<bool>(table.acquire(a)));

  fake_now = 2499;  // 1000ns idle since the touch at 1499
  EXPECT_FALSE(static_cast<bool>(table.acquire(a)));
  EXPECT_EQ(table.stats().expired_ttl, 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SessionTable, SweepExpiredReapsIdleSessionsInBulk) {
  Nanos fake_now = 0;
  SessionTable table({.capacity = 16, .idle_ttl = 100, .shards = 4},
                     /*epc=*/nullptr, [&] { return fake_now; });
  for (int i = 0; i < 10; ++i) (void)table.insert(make_server_channel(1));
  EXPECT_EQ(table.size(), 10u);
  EXPECT_EQ(table.sweep_expired(), 0u);

  fake_now = 1000;
  EXPECT_EQ(table.sweep_expired(), 10u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.stats().expired_ttl, 10u);
}

TEST(SessionTable, EpcChargeAndReleaseAreSymmetric) {
  sgx::EpcAccountant epc(1 << 20);
  const std::size_t per_session = SessionTable::session_epc_bytes();
  {
    SessionTable table({.capacity = 4, .shards = 1}, &epc);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
      ids.push_back(table.insert(make_server_channel(static_cast<std::uint8_t>(i))));
    }
    EXPECT_EQ(epc.in_use(), 4 * per_session);
    EXPECT_EQ(table.stats().epc_bytes, 4 * per_session);

    // LRU eviction releases exactly one session's charge.
    (void)table.insert(make_server_channel(9));
    EXPECT_EQ(epc.in_use(), 4 * per_session);

    // Explicit erase releases too.
    EXPECT_TRUE(table.erase(ids[3]));
    EXPECT_EQ(epc.in_use(), 3 * per_session);
    EXPECT_EQ(table.stats().erased, 1u);
  }
  // Destruction releases everything still live.
  EXPECT_EQ(epc.in_use(), 0u);
}

TEST(SessionTable, ShardedCapacityBoundsGlobalSize) {
  SessionTable table({.capacity = 8, .shards = 4});
  for (int i = 0; i < 100; ++i) (void)table.insert(make_server_channel(1));
  const auto stats = table.stats();
  EXPECT_LE(stats.active, 8u);
  EXPECT_EQ(stats.created, 100u);
  EXPECT_EQ(stats.evicted_lru, stats.created - stats.active);
  EXPECT_LE(stats.peak_active, 8u + 1u);  // insert charges before evicting
}

TEST(SessionTable, ConcurrentInsertAcquireEraseIsSafe) {
  sgx::EpcAccountant epc(8 << 20);
  SessionTable table({.capacity = 64, .shards = 8}, &epc);
  constexpr int kThreads = 8;
  constexpr int kOpsEach = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      std::vector<std::uint64_t> mine;
      for (int i = 0; i < kOpsEach; ++i) {
        mine.push_back(table.insert(make_server_channel(static_cast<std::uint8_t>(t))));
        (void)table.acquire(mine[static_cast<std::size_t>(i) / 2]);
        if (i % 3 == 0) (void)table.erase(mine.back());
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = table.stats();
  EXPECT_EQ(stats.created, static_cast<std::uint64_t>(kThreads) * kOpsEach);
  EXPECT_LE(stats.active, 64u);
  // Accounting invariant after arbitrary interleaving: live sessions and
  // EPC bytes agree exactly.
  EXPECT_EQ(stats.epc_bytes, stats.active * SessionTable::session_epc_bytes());
  EXPECT_EQ(epc.in_use(), stats.epc_bytes);
}

// ---- proxy-level session lifecycle ------------------------------------------

XSearchProxy::Options saturation_options() {
  XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 1000;
  options.contact_engine = false;  // no engine: session paths in isolation
  return options;
}

TEST(ProxySessions, EvictedSessionQueryReturnsNotFound) {
  sgx::AttestationAuthority authority(to_bytes("session-test-root"));
  auto options = saturation_options();
  options.session_capacity = 1;
  options.session_shards = 1;
  XSearchProxy proxy(nullptr, authority, options);

  ClientBroker first(proxy, authority, proxy.measurement(), 1);
  ASSERT_TRUE(first.connect().is_ok());  // session id 1
  ASSERT_TRUE(first.search("while still resident").is_ok());

  // The second handshake exceeds the capacity-1 table and evicts `first`.
  ClientBroker second(proxy, authority, proxy.measurement(), 2);
  ASSERT_TRUE(second.connect().is_ok());
  EXPECT_EQ(proxy.session_stats().evicted_lru, 1u);

  // A record for the evicted session id is refused with NOT_FOUND at the
  // proxy API (the first handshake of this proxy allocated id 1).
  const auto raw = proxy.handle_query_record(1, Bytes(64, 1));
  ASSERT_FALSE(raw.is_ok());
  EXPECT_EQ(raw.status().code(), StatusCode::kNotFound);

  // The broker recovers transparently: one fresh handshake, one retry.
  EXPECT_TRUE(first.search("after eviction").is_ok());
  EXPECT_EQ(first.reconnects(), 1u);
  EXPECT_EQ(proxy.session_stats().evicted_lru, 2u);  // it evicted `second`
}

TEST(ProxySessions, IdleSessionExpiresThroughProxy) {
  sgx::AttestationAuthority authority(to_bytes("session-test-root"));
  auto options = saturation_options();
  // Wide enough that the handshake→query gap of one search cannot span it
  // even under TSan on a loaded runner (a 1 ms TTL flaked there: the FIRST
  // search's own session expired mid-call, yielding a second reconnect).
  options.session_idle_ttl = 200 * kMilli;
  XSearchProxy proxy(nullptr, authority, options);

  ClientBroker broker(proxy, authority, proxy.measurement(), 3);
  ASSERT_TRUE(broker.search("fresh").is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  // The idle session expired; the broker re-handshakes and retries once.
  EXPECT_TRUE(broker.search("stale").is_ok());
  EXPECT_EQ(broker.reconnects(), 1u);
  EXPECT_EQ(proxy.session_stats().expired_ttl, 1u);
}

TEST(ProxySessions, ValidatedCreateChecksSessionCapacityAndInitStatus) {
  sgx::AttestationAuthority authority(to_bytes("session-test-root"));
  auto options = saturation_options();
  options.session_capacity = 0;
  EXPECT_EQ(XSearchProxy::create(nullptr, authority, options).status().code(),
            StatusCode::kInvalidArgument);

  auto proxy = XSearchProxy::create(nullptr, authority, saturation_options());
  ASSERT_TRUE(proxy.is_ok()) << proxy.status().to_string();
  EXPECT_TRUE(proxy.value()->init_status().is_ok());
}

// Regression test for the SecureChannel data race: the channel was fetched
// under the sessions mutex but open()/seal() ran unlocked, so concurrent
// records on one session raced on the nonce counters (and could dangle on a
// concurrent erase). With per-session locking, one thread issuing ordered
// queries stays correct while many threads slam the same session with
// garbage records. TSan (CI job) verifies the absence of the race.
TEST(ProxySessions, OneSessionHammeredFromManyThreads) {
  sgx::AttestationAuthority authority(to_bytes("session-test-root"));
  XSearchProxy proxy(nullptr, authority, saturation_options());

  // Manual handshake so the session id is visible to the hammer threads.
  crypto::X25519Key eph_seed{};
  eph_seed[0] = 0x77;
  const auto ephemeral = crypto::x25519_keypair_from_seed(crypto::X25519Secret(eph_seed));
  auto handshake = proxy.handshake(ephemeral.public_key);
  ASSERT_TRUE(handshake.is_ok()) << handshake.status().to_string();
  auto static_pub = sgx::verify_and_extract_channel_key(
      authority, handshake.value().quote, proxy.measurement());
  ASSERT_TRUE(static_pub.is_ok());
  auto channel = crypto::SecureChannel::initiator(
      ephemeral, static_pub.value(), handshake.value().server_ephemeral_pub);
  const std::uint64_t session_id = handshake.value().session_id;

  std::atomic<bool> stop{false};
  std::atomic<int> garbage_accepted{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&] {
      const Bytes garbage(48, 0x5a);
      while (!stop.load(std::memory_order_relaxed)) {
        if (proxy.handle_query_record(session_id, garbage).is_ok()) {
          ++garbage_accepted;
        }
      }
    });
  }

  // Ordered real queries race the garbage on the same session's channel.
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    const Bytes record =
        channel.seal(wire::frame_query("query " + std::to_string(i)));
    auto response = proxy.handle_query_record(session_id, record);
    ASSERT_TRUE(response.is_ok()) << "query " << i << ": "
                                  << response.status().to_string();
    auto plain = channel.open(response.value());
    ASSERT_TRUE(plain.is_ok()) << plain.status().to_string();
    ++ok;
  }
  stop.store(true);
  for (auto& h : hammers) h.join();

  EXPECT_EQ(ok, 50);
  EXPECT_EQ(garbage_accepted.load(), 0);  // unauthenticated records all refused
  EXPECT_EQ(proxy.session_stats().active, 1u);
}

}  // namespace
}  // namespace xsearch::core
