// ProxyServer pool/registry tests: connection reaping, saturation shedding,
// and the acceptance stress test of the session subsystem — ≥1k queries
// across ≥8 concurrent TCP sessions against a capped SessionTable, with
// evictions observed and the proxy's EPC accounting stable. Run under
// ThreadSanitizer in CI.
#include "net/proxy_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <cstring>

#include "net/frame.hpp"
#include "net/remote_broker.hpp"
#include "net/socket.hpp"
#include "sgx/attestation.hpp"
#include "test_util.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::net {
namespace {

core::XSearchProxy::Options saturation_options() {
  core::XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 4096;
  options.contact_engine = false;  // isolate the proxy/session path
  return options;
}

// Reaping is asynchronous with the client's close (the worker notices EOF,
// then erases the registry entry), hence the shared polling helper.
using testutil::eventually;

TEST(ProxyServerPool, ReapsFinishedConnections) {
  sgx::AttestationAuthority authority(to_bytes("pool-test-root"));
  core::XSearchProxy proxy(nullptr, authority, saturation_options());
  auto server = ProxyServer::start(proxy);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  constexpr int kConnections = 10;
  for (int i = 0; i < kConnections; ++i) {
    RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                        proxy.measurement(), static_cast<std::uint64_t>(i));
    ASSERT_TRUE(broker.search("q" + std::to_string(i)).is_ok());
  }  // broker teardown closes each connection

  // The registry shrinks back to zero instead of accumulating one entry
  // (and one thread) per connection ever served.
  EXPECT_TRUE(eventually([&] { return server.value()->active_connections() == 0; }));
  EXPECT_TRUE(eventually([&] {
    return server.value()->connections_reaped() == kConnections;
  }));
  EXPECT_EQ(server.value()->connections_served(), kConnections);
  EXPECT_EQ(server.value()->connections_shed(), 0u);
  server.value()->stop();
}

TEST(ProxyServerPool, ShedsConnectionsBeyondHardCap) {
  sgx::AttestationAuthority authority(to_bytes("pool-test-root"));
  core::XSearchProxy proxy(nullptr, authority, saturation_options());
  ProxyServer::Options options;
  options.max_connections = 2;
  auto server = ProxyServer::start(proxy, 0, options);
  ASSERT_TRUE(server.is_ok());

  // Two connections fill the hard cap. Idle is enough: the cap bounds live
  // sockets, not busy workers (idle sessions hold no worker anymore).
  auto first = TcpStream::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(first.is_ok());
  auto second = TcpStream::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(
      eventually([&] { return server.value()->active_connections() == 2; }));

  // Third connection is over the cap: shed at accept with a typed
  // OVERLOADED error instead of admitted (or EMFILE'd) silently.
  auto shed = TcpStream::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(shed.is_ok());
  ASSERT_TRUE(eventually([&] { return server.value()->connections_shed() == 1; }));
  auto reply = read_frame(shed.value());
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().type, FrameType::kErrorStatus);
  const Status shed_status = decode_error_status(reply.value().payload);
  EXPECT_EQ(shed_status.code(), StatusCode::kOverloaded);
  EXPECT_NE(shed_status.message().find("server busy"), std::string::npos);
  // ...and the connection is closed after the error frame.
  auto after = read_frame(shed.value());
  EXPECT_FALSE(after.is_ok());

  // The shed connection is not admitted: the cap still has room for the
  // live pair, and the admitted ones keep working.
  EXPECT_EQ(server.value()->active_connections(), 2u);
  RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                      proxy.measurement(), 9);
  first.value().shutdown_both();  // make room under the cap
  ASSERT_TRUE(eventually(
      [&] { return server.value()->active_connections() <= 1; }));
  ASSERT_TRUE(broker.search("after shed").is_ok());

  server.value()->stop();
}

/// ProxyHandler wrapper that parks query handling on a gate, so a test can
/// hold the single dispatch worker busy for a controlled window.
class GateHandler final : public core::ProxyHandler {
 public:
  explicit GateHandler(core::ProxyHandler& inner) : inner_(&inner) {}

  Result<core::HandshakeResponse> handshake(
      const crypto::X25519Key& client_ephemeral_pub,
      std::uint64_t proposed_session_id) override {
    return inner_->handshake(client_ephemeral_pub, proposed_session_id);
  }

  Result<Bytes> handle_query_record(std::uint64_t session_id,
                                    ByteSpan record) override {
    entered_.fetch_add(1, std::memory_order_release);
    while (!open_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return inner_->handle_query_record(session_id, record);
  }

  [[nodiscard]] sgx::Measurement measurement() const override {
    return inner_->measurement();
  }

  [[nodiscard]] int entered() const {
    return entered_.load(std::memory_order_acquire);
  }
  void open_gate() { open_.store(true, std::memory_order_release); }

 private:
  core::ProxyHandler* inner_;
  std::atomic<int> entered_{0};
  std::atomic<bool> open_{false};
};

TEST(ProxyServerPool, QueuedRequestPastTimeoutIsShedTyped) {
  sgx::AttestationAuthority authority(to_bytes("pool-test-root"));
  core::XSearchProxy proxy(nullptr, authority, saturation_options());
  GateHandler gate(proxy);
  ProxyServer::Options options;
  options.workers = 1;
  options.max_pending_connections = 1;
  options.queue_timeout = 30 * kMilli;
  auto server = ProxyServer::start(gate, 0, options);
  ASSERT_TRUE(server.is_ok());

  // Occupy the single dispatch worker: the broker's search blocks inside
  // the gated handler.
  RemoteBroker occupant("127.0.0.1", server.value()->port(), authority,
                        proxy.measurement(), 1);
  ASSERT_TRUE(occupant.connect().is_ok());
  std::thread occupant_search([&] { (void)occupant.search("hold the worker"); });
  ASSERT_TRUE(eventually([&] { return gate.entered() == 1; }));

  // A second client's handshake request now parks in the dispatch queue...
  auto queued = TcpStream::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(queued.is_ok());
  const Bytes hello(crypto::kX25519KeySize, 0x42);
  ASSERT_TRUE(write_frame(queued.value(), FrameType::kHello, hello).is_ok());

  // ...well past its queue deadline (its client would have given up).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The worker frees up and picks the queued request: instead of serving
  // abandoned work it sheds it with a typed OVERLOADED error.
  gate.open_gate();
  occupant_search.join();
  auto reply = read_frame(queued.value());
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(reply.value().type, FrameType::kErrorStatus);
  const Status shed_status = decode_error_status(reply.value().payload);
  EXPECT_EQ(shed_status.code(), StatusCode::kOverloaded);
  EXPECT_NE(shed_status.message().find("expired"), std::string::npos);
  EXPECT_TRUE(eventually([&] { return server.value()->queue_expired() == 1; }));
  EXPECT_EQ(server.value()->connections_shed(), 1u);

  server.value()->stop();
}

// Acceptance stress test (ISSUE 2): ≥1k queries across ≥8 concurrent
// sessions through ProxyServer over real TCP, with the SessionTable capped
// low enough that evictions occur, and the enclave's memory accounting
// exactly balanced at the end. Client threads churn through fresh sessions
// (re-handshaking every few queries) so the table sees far more sessions
// than it may hold; the RemoteBroker's transparent re-handshake absorbs any
// eviction of a momentarily idle live session.
TEST(ProxyServerPool, StressManySessionsBoundedTableStableEpc) {
  sgx::AttestationAuthority authority(to_bytes("pool-test-root"));
  auto options = saturation_options();
  options.session_capacity = 32;
  options.session_shards = 4;
  core::XSearchProxy proxy(nullptr, authority, options);

  ProxyServer::Options server_options;
  server_options.workers = 8;
  auto server = ProxyServer::start(proxy, 0, server_options);
  ASSERT_TRUE(server.is_ok());

  constexpr int kClientThreads = 8;   // concurrent sessions at any moment
  constexpr int kRounds = 17;         // sessions per thread (churn)
  constexpr int kQueriesPerRound = 8; // 8 * 17 * 8 = 1088 >= 1k queries
  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::atomic<std::uint64_t> reconnects{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        RemoteBroker broker(
            "127.0.0.1", server.value()->port(), authority, proxy.measurement(),
            static_cast<std::uint64_t>(c * 1000 + round));
        for (int q = 0; q < kQueriesPerRound; ++q) {
          const std::string query = "client " + std::to_string(c) + " round " +
                                    std::to_string(round) + " query " +
                                    std::to_string(q);
          if (broker.search(query).is_ok()) {
            ++completed;
          } else {
            ++failures;
          }
        }
        reconnects += broker.reconnects();
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kClientThreads * kRounds * kQueriesPerRound);
  EXPECT_GE(completed.load(), 1000);

  const auto stats = proxy.session_stats();
  // Far more sessions were created than the cap; the table stayed bounded
  // and evicted the excess.
  EXPECT_GE(stats.created,
            static_cast<std::uint64_t>(kClientThreads) * kRounds);
  EXPECT_LE(stats.active, 32u);
  EXPECT_GT(stats.evicted_lru + stats.expired_ttl, 0u);

  // EPC accounting is stable: occupancy decomposes exactly into the (full,
  // bounded) history window plus the live sessions' charge — nothing leaked
  // by the eviction/reap churn.
  EXPECT_EQ(stats.epc_bytes,
            stats.active * core::SessionTable::session_epc_bytes());
  EXPECT_EQ(proxy.enclave().epc().in_use(),
            proxy.history_memory_bytes() + stats.epc_bytes);

  // All client connections were reaped once the brokers went away.
  EXPECT_TRUE(eventually([&] { return server.value()->active_connections() == 0; }));
  EXPECT_EQ(server.value()->connections_served(),
            server.value()->connections_reaped());

  server.value()->stop();
}

TEST(ProxyServerPool, StopWithLiveConnectionsIsCleanAndIdempotent) {
  sgx::AttestationAuthority authority(to_bytes("pool-test-root"));
  core::XSearchProxy proxy(nullptr, authority, saturation_options());
  auto server = ProxyServer::start(proxy);
  ASSERT_TRUE(server.is_ok());

  RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                      proxy.measurement(), 1);
  ASSERT_TRUE(broker.search("live during stop").is_ok());

  server.value()->stop();  // must unblock the worker parked in recv
  server.value()->stop();  // idempotent
  EXPECT_EQ(server.value()->active_connections(), 0u);

  // stop() released the listener descriptor: the port is immediately free
  // for a replacement server, even while the stopped one is still in scope.
  auto rebound = TcpListener::bind(server.value()->port());
  EXPECT_TRUE(rebound.is_ok()) << rebound.status().to_string();
}

// --- batch retry semantics ---------------------------------------------------

/// Minimal lossy proxy host: speaks the real frame protocol against a real
/// enclave proxy, but CLOSES the first connection right after executing its
/// batch — the "reply lost after execution" window no transport can rule
/// out. The second connection behaves.
void serve_lossy_host(TcpListener& listener, core::XSearchProxy& proxy) {
  for (int conn = 0; conn < 2; ++conn) {
    auto stream = listener.accept();
    if (!stream.is_ok()) return;
    const bool drop_reply = conn == 0;
    for (;;) {
      auto frame = read_frame(stream.value());
      if (!frame.is_ok()) break;
      if (frame.value().type == FrameType::kHello) {
        crypto::X25519Key client_pub;
        ASSERT_EQ(frame.value().payload.size(), client_pub.size());
        std::memcpy(client_pub.data(), frame.value().payload.data(),
                    client_pub.size());
        auto response = proxy.handshake(client_pub);
        ASSERT_TRUE(response.is_ok());
        Bytes payload;
        core::wire::put_u64(payload, response.value().session_id);
        const Bytes quote = response.value().quote.serialize();
        core::wire::put_u32(payload, static_cast<std::uint32_t>(quote.size()));
        append(payload, quote);
        append(payload, response.value().server_ephemeral_pub);
        ASSERT_TRUE(
            write_frame(stream.value(), FrameType::kHelloReply, payload).is_ok());
        continue;
      }
      ASSERT_EQ(frame.value().type, FrameType::kBatchQuery);
      std::size_t offset = 0;
      auto session = core::wire::get_u64(frame.value().payload, offset);
      ASSERT_TRUE(session.is_ok());
      // The proxy EXECUTES the batch either way…
      auto response = proxy.handle_query_record(
          session.value(), ByteSpan(frame.value().payload).subspan(offset));
      ASSERT_TRUE(response.is_ok());
      if (!drop_reply) {  // …but on conn 0 the reply dies with the connection.
        ASSERT_TRUE(write_frame(stream.value(), FrameType::kBatchReply,
                                response.value())
                        .is_ok());
      }
      break;  // one batch per connection, then hang up
    }
  }
}

TEST(RemoteBrokerRetry, LostBatchReplyRetriesAtLeastOnceAndIsCounted) {
  // Pins the documented at-least-once semantics of search_batch: when the
  // frame was delivered but its reply lost, the retry re-executes the whole
  // batch on the proxy (duplicate history adds), and the broker counts the
  // duplication-risk retry.
  sgx::AttestationAuthority authority(to_bytes("lossy-host-root"));
  core::XSearchProxy proxy(nullptr, authority, saturation_options());
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::thread host(
      [&] { serve_lossy_host(listener.value(), proxy); });

  RemoteBroker broker("127.0.0.1", listener.value().port(), authority,
                      proxy.measurement(), 77);
  const std::vector<std::string> queries = {"alpha", "beta", "gamma"};
  auto outcomes = broker.search_batch(queries);
  host.join();

  ASSERT_TRUE(outcomes.is_ok()) << outcomes.status().to_string();
  ASSERT_EQ(outcomes.value().size(), queries.size());
  for (const auto& outcome : outcomes.value()) {
    EXPECT_TRUE(outcome.status.is_ok());
  }
  EXPECT_EQ(broker.reconnects(), 1u);
  EXPECT_EQ(broker.at_least_once_retries(), 1u);
  // The at-least-once window is real: both executions added to the history.
  EXPECT_EQ(proxy.history_size(), 2 * queries.size());
}

TEST(RemoteBrokerRetry, RefusedRecordRetriesExactlyOnce) {
  // A frame-level error (unknown session after an eviction) means the proxy
  // never opened the record: the transparent retry must NOT count as an
  // at-least-once risk, and nothing may execute twice.
  sgx::AttestationAuthority authority(to_bytes("evict-retry-root"));
  core::XSearchProxy::Options options = saturation_options();
  options.session_capacity = 1;
  core::XSearchProxy proxy(nullptr, authority, options);
  auto server = ProxyServer::start(proxy);
  ASSERT_TRUE(server.is_ok());

  RemoteBroker first("127.0.0.1", server.value()->port(), authority,
                     proxy.measurement(), 1);
  ASSERT_TRUE(first.connect().is_ok());
  RemoteBroker second("127.0.0.1", server.value()->port(), authority,
                      proxy.measurement(), 2);
  ASSERT_TRUE(second.connect().is_ok());  // capacity 1: evicts `first`

  const std::vector<std::string> queries = {"one", "two"};
  auto outcomes = first.search_batch(queries);  // unknown session → retry
  ASSERT_TRUE(outcomes.is_ok()) << outcomes.status().to_string();
  EXPECT_EQ(first.reconnects(), 1u);
  EXPECT_EQ(first.at_least_once_retries(), 0u);
  EXPECT_EQ(proxy.history_size(), queries.size());  // executed exactly once
  server.value()->stop();
}

}  // namespace
}  // namespace xsearch::net
