// Tests for the encrypted enclave→engine link (paper footnote 2) and the
// underlying envelope primitive.
#include <gtest/gtest.h>

#include "crypto/envelope.hpp"
#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/engine_gateway.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::core {
namespace {

// ---- envelope primitive ---------------------------------------------------------

crypto::SecureRandom seeded_rng(std::uint8_t tag) {
  crypto::ChaChaKey::Raw raw{};
  raw.fill(tag);
  return crypto::SecureRandom(crypto::ChaChaKey::absorb(raw));
}

crypto::X25519KeyPair recipient_keys(std::uint8_t tag) {
  crypto::X25519Secret::Raw raw{};
  raw.fill(tag);
  return crypto::x25519_keypair_from_seed(crypto::X25519Secret::absorb(raw));
}

TEST(Envelope, SealOpenRoundTrip) {
  auto rng = seeded_rng(1);
  const auto recipient = recipient_keys(2);
  crypto::AeadKey response_key{};
  const Bytes envelope = crypto::envelope_seal(recipient.public_key, rng,
                                               to_bytes("aad"), to_bytes("payload"),
                                               &response_key);
  const auto opened = crypto::envelope_open(recipient, to_bytes("aad"), envelope);
  ASSERT_TRUE(opened.is_ok());
  EXPECT_EQ(to_string(opened.value().plaintext), "payload");
  EXPECT_TRUE(constant_time_equal(opened.value().response_key, response_key));
}

TEST(Envelope, ReplyRoundTrip) {
  auto rng = seeded_rng(3);
  const auto recipient = recipient_keys(4);
  crypto::AeadKey response_key{};
  const Bytes envelope = crypto::envelope_seal(recipient.public_key, rng,
                                               to_bytes("aad"), to_bytes("request"),
                                               &response_key);
  const auto opened = crypto::envelope_open(recipient, to_bytes("aad"), envelope);
  ASSERT_TRUE(opened.is_ok());

  const Bytes reply = crypto::envelope_reply_seal(opened.value().response_key,
                                                  to_bytes("aad"), to_bytes("response"));
  const auto plain = crypto::envelope_reply_open(response_key, to_bytes("aad"), reply);
  ASSERT_TRUE(plain.is_ok());
  EXPECT_EQ(to_string(plain.value()), "response");
}

TEST(Envelope, WrongRecipientCannotOpen) {
  auto rng = seeded_rng(5);
  const auto intended = recipient_keys(6);
  const auto eavesdropper = recipient_keys(7);
  crypto::AeadKey response_key{};
  const Bytes envelope = crypto::envelope_seal(intended.public_key, rng, {},
                                               to_bytes("secret"), &response_key);
  EXPECT_FALSE(crypto::envelope_open(eavesdropper, {}, envelope).is_ok());
  EXPECT_TRUE(crypto::envelope_open(intended, {}, envelope).is_ok());
}

TEST(Envelope, TamperRejected) {
  auto rng = seeded_rng(8);
  const auto recipient = recipient_keys(9);
  crypto::AeadKey response_key{};
  Bytes envelope = crypto::envelope_seal(recipient.public_key, rng, {},
                                         to_bytes("secret"), &response_key);
  envelope.back() ^= 1;
  EXPECT_FALSE(crypto::envelope_open(recipient, {}, envelope).is_ok());
}

TEST(Envelope, AadMismatchRejected) {
  auto rng = seeded_rng(10);
  const auto recipient = recipient_keys(11);
  crypto::AeadKey response_key{};
  const Bytes envelope = crypto::envelope_seal(recipient.public_key, rng,
                                               to_bytes("context-A"), to_bytes("x"),
                                               &response_key);
  EXPECT_FALSE(crypto::envelope_open(recipient, to_bytes("context-B"), envelope).is_ok());
}

TEST(Envelope, TooShortRejected) {
  const auto recipient = recipient_keys(12);
  EXPECT_FALSE(crypto::envelope_open(recipient, {}, Bytes(10, 1)).is_ok());
}

// ---- encrypted engine link through the proxy --------------------------------------

class EngineLinkTest : public ::testing::Test {
 protected:
  EngineLinkTest()
      : log_([] {
          dataset::SyntheticLogConfig config;
          config.num_users = 20;
          config.total_queries = 1'500;
          config.vocab_size = 800;
          config.num_topics = 10;
          config.words_per_topic = 60;
          return dataset::generate_synthetic_log(config);
        }()),
        corpus_(log_, engine::CorpusConfig{.seed = 12, .num_documents = 800}),
        engine_(corpus_),
        gateway_(&engine_, 99),
        authority_(to_bytes("link-root")) {}

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  SecureEngineGateway gateway_;
  sgx::AttestationAuthority authority_;
};

TEST_F(EngineLinkTest, SearchWorksOverEncryptedLink) {
  XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 5'000;
  XSearchProxy proxy(gateway_, authority_, options);
  ClientBroker broker(proxy, authority_, proxy.measurement(), 1);

  const auto results = broker.search(log_.records()[5].text);
  ASSERT_TRUE(results.is_ok()) << results.status().to_string();
  EXPECT_FALSE(results.value().empty());
}

TEST_F(EngineLinkTest, EngineStillSeesObfuscatedQuery) {
  // Footnote 2 changes transport privacy, not obfuscation: the gateway
  // (engine side) still receives the OR query, not the raw one.
  std::vector<std::string> observed;
  engine_.set_observer([&observed](std::string_view q) { observed.emplace_back(q); });

  XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 5'000;
  XSearchProxy proxy(gateway_, authority_, options);
  ClientBroker broker(proxy, authority_, proxy.measurement(), 2);
  for (std::size_t i = 0; i < 10; ++i) {
    (void)broker.search(log_.records()[i].text);
  }
  observed.clear();
  const std::string secret = log_.records()[100].text;
  ASSERT_TRUE(broker.search(secret).is_ok());
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_NE(observed[0], secret);
  EXPECT_NE(observed[0].find(" OR "), std::string::npos);
}

TEST_F(EngineLinkTest, ResultsMatchPlainLink) {
  // The encrypted link is transport-only: same results as the plain link
  // for the same proxy seed.
  XSearchProxy::Options options;
  options.k = 0;  // no randomness in sub-query choice
  options.history_capacity = 100;
  XSearchProxy encrypted(gateway_, authority_, options);
  XSearchProxy plain(&engine_, authority_, options);

  ClientBroker b1(encrypted, authority_, encrypted.measurement(), 3);
  ClientBroker b2(plain, authority_, plain.measurement(), 4);
  const auto& query = log_.records()[7].text;
  const auto r1 = b1.search(query);
  const auto r2 = b2.search(query);
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r1.value(), r2.value());
}

TEST_F(EngineLinkTest, GatewayRejectsGarbageEnvelopes) {
  EXPECT_FALSE(gateway_.handle(Bytes(3, 1)).is_ok());
  EXPECT_FALSE(gateway_.handle(Bytes(200, 0xab)).is_ok());
}

TEST_F(EngineLinkTest, GatewayWithoutEngineEchoesEmpty) {
  SecureEngineGateway lonely(nullptr, 5);
  auto rng = seeded_rng(20);
  crypto::AeadKey response_key{};
  wire::EngineRequest request;
  request.sub_queries = {"anything"};
  const Bytes envelope = crypto::envelope_seal(
      lonely.public_key(), rng, to_bytes("xsearch-engine-link-v1"),
      wire::serialize_engine_request(request), &response_key);
  const auto sealed = lonely.handle(envelope);
  ASSERT_TRUE(sealed.is_ok());
  const auto plain = crypto::envelope_reply_open(
      response_key, to_bytes("xsearch-engine-link-v1"), sealed.value());
  ASSERT_TRUE(plain.is_ok());
  const auto results = wire::parse_results(plain.value());
  ASSERT_TRUE(results.is_ok());
  EXPECT_TRUE(results.value().empty());
}

}  // namespace
}  // namespace xsearch::core
