#include "attack/simattack.hpp"

#include <gtest/gtest.h>

#include "dataset/synthetic.hpp"

namespace xsearch::attack {
namespace {

dataset::QueryLog tiny_training() {
  // Three users with crisply separated interests.
  return dataset::QueryLog({
      {1, 0, "chronic back pain"},
      {1, 1, "back pain treatment"},
      {1, 2, "pain relief exercises"},
      {2, 0, "pasta carbonara recipe"},
      {2, 1, "italian pasta sauce"},
      {2, 2, "fresh pasta dough"},
      {3, 0, "javascript async await"},
      {3, 1, "javascript promises tutorial"},
      {3, 2, "nodejs event loop"},
  });
}

TEST(SimAttack, SimilarityHigherForOwnProfile) {
  SimAttack attack(tiny_training());
  EXPECT_GT(attack.similarity("back pain remedies", 1),
            attack.similarity("back pain remedies", 2));
  EXPECT_GT(attack.similarity("pasta recipe ideas", 2),
            attack.similarity("pasta recipe ideas", 3));
}

TEST(SimAttack, SimilarityZeroForUnknownUser) {
  SimAttack attack(tiny_training());
  EXPECT_DOUBLE_EQ(attack.similarity("anything", 42), 0.0);
}

TEST(SimAttack, SimilarityZeroForAlienQuery) {
  SimAttack attack(tiny_training());
  EXPECT_DOUBLE_EQ(attack.similarity("zzz unknown words", 1), 0.0);
}

TEST(SimAttack, ExactRepeatIsMaximallySimilar) {
  SimAttack attack(tiny_training());
  const double repeat = attack.similarity("chronic back pain", 1);
  const double related = attack.similarity("back pain doctor", 1);
  EXPECT_GT(repeat, related);
}

TEST(SimAttack, AttackIdentifiesUserFromPlainQuery) {
  SimAttack attack(tiny_training());
  const auto id = attack.attack({"back pain treatment options"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->user, 1u);
}

TEST(SimAttack, AttackPicksOriginalAmongFakes) {
  SimAttack attack(tiny_training());
  // User 1's real query hidden among queries alien to every profile.
  const auto id = attack.attack(
      {"xqz unknowable", "back pain treatment", "vvv nonsense words"});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->user, 1u);
  EXPECT_EQ(id->query, "back pain treatment");
}

TEST(SimAttack, RealFakesConfuseTheAttack) {
  SimAttack attack(tiny_training());
  // X-Search-style obfuscation: the fakes are other users' real queries.
  // The attack returns *some* pair — and may well pick a decoy.
  const auto id = attack.attack(
      {"back pain treatment", "pasta carbonara recipe", "javascript promises tutorial"});
  if (id.has_value()) {
    // Whichever pair wins, the adversary cannot distinguish a decoy hit
    // from a true hit; the bench measures the error rate. Here we only
    // require a well-formed answer.
    EXPECT_TRUE(id->user == 1u || id->user == 2u || id->user == 3u);
  }
}

TEST(SimAttack, AttackFailsOnAllAlienQueries) {
  SimAttack attack(tiny_training());
  EXPECT_FALSE(attack.attack({"qqq www", "eee rrr"}).has_value());
}

TEST(SimAttack, AttackFailsOnEmptyInput) {
  SimAttack attack(tiny_training());
  EXPECT_FALSE(attack.attack({}).has_value());
}

TEST(SimAttack, MaxSimilarityDetectsRealQueries) {
  SimAttack attack(tiny_training());
  EXPECT_NEAR(attack.max_similarity_to_any_past_query("chronic back pain"), 1.0, 1e-9);
  EXPECT_LT(attack.max_similarity_to_any_past_query("xyzzy plugh"), 0.01);
}

TEST(SimAttack, MaxSimilarityPartialOverlap) {
  SimAttack attack(tiny_training());
  const double partial = attack.max_similarity_to_any_past_query("back pain");
  EXPECT_GT(partial, 0.5);
  EXPECT_LT(partial, 1.0);
}

TEST(SimAttack, SmoothingFactorMatters) {
  const auto log = tiny_training();
  SimAttack heavy(log, {.smoothing = 0.9});
  SimAttack light(log, {.smoothing = 0.1});
  // With heavier smoothing the best-matching profile query dominates.
  EXPECT_GT(heavy.similarity("chronic back pain", 1),
            light.similarity("chronic back pain", 1));
}

TEST(SimAttack, SyntheticLogReidentificationAboveChance) {
  // On the synthetic AOL-like log, unlinkability alone (k = 0) must leave a
  // substantial fraction of test queries re-identifiable — the premise of
  // Figure 3's ~40% baseline.
  dataset::SyntheticLogConfig config;
  config.num_users = 60;
  config.total_queries = 8000;
  config.vocab_size = 3000;
  config.num_topics = 30;
  config.words_per_topic = 100;
  const auto log = dataset::generate_synthetic_log(config);
  const auto top = log.most_active_users(20);
  const auto split = dataset::split_per_user(log.filter_users(top), 2.0 / 3.0);

  SimAttack attack(split.train);
  std::size_t attempts = 0, correct = 0;
  for (const auto& record : split.test.records()) {
    if (attempts >= 200) break;
    ++attempts;
    const auto id = attack.attack({record.text});
    if (id && id->user == record.user) ++correct;
  }
  const double rate = static_cast<double>(correct) / static_cast<double>(attempts);
  EXPECT_GT(rate, 0.15);  // way above 1/20 chance
  EXPECT_LT(rate, 0.95);  // but not trivially perfect
}

}  // namespace
}  // namespace xsearch::attack
