// HTTP layer tests: parser unit tests plus the full compatibility frontend
// exercised by a raw HTTP client over loopback.
#include <gtest/gtest.h>

#include "dataset/synthetic.hpp"
#include "engine/corpus.hpp"
#include "engine/search_engine.hpp"
#include "net/http.hpp"
#include "net/http_frontend.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {
namespace {

// ---- url coding ----------------------------------------------------------------

TEST(UrlCoding, DecodeBasics) {
  EXPECT_EQ(url_decode("hello+world"), "hello world");
  EXPECT_EQ(url_decode("a%20b"), "a b");
  EXPECT_EQ(url_decode("100%25"), "100%");
  EXPECT_EQ(url_decode("plain"), "plain");
}

TEST(UrlCoding, DecodeMalformedEscapesPassThrough) {
  EXPECT_EQ(url_decode("%"), "%");
  EXPECT_EQ(url_decode("%zz"), "%zz");
  EXPECT_EQ(url_decode("%2"), "%2");
}

TEST(UrlCoding, EncodeDecodeRoundTrip) {
  const std::string original = "private web search: 100% \"safe\" & sound?";
  EXPECT_EQ(url_decode(url_encode(original)), original);
}

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("plain text"), "plain text");
}

// ---- request parsing --------------------------------------------------------------

TEST(HttpParse, SimpleGet) {
  const Bytes raw = to_bytes(
      "GET /search?q=hello+world&k=3 HTTP/1.1\r\nHost: localhost\r\n\r\n");
  const auto request = parse_http_request(raw);
  ASSERT_TRUE(request.is_ok()) << request.status().to_string();
  EXPECT_EQ(request.value().method, "GET");
  EXPECT_EQ(request.value().path, "/search");
  EXPECT_EQ(request.value().param("q"), "hello world");
  EXPECT_EQ(request.value().param("k"), "3");
  EXPECT_FALSE(request.value().param("missing").has_value());
  EXPECT_EQ(request.value().headers.at("host"), "localhost");
}

TEST(HttpParse, HeaderNamesCaseInsensitive) {
  const Bytes raw = to_bytes("GET / HTTP/1.1\r\nCoNtEnT-TyPe: text/plain\r\n\r\n");
  const auto request = parse_http_request(raw);
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request.value().headers.at("content-type"), "text/plain");
}

TEST(HttpParse, PercentEncodedPath) {
  const Bytes raw = to_bytes("GET /a%20b?x=%26amp HTTP/1.1\r\n\r\n");
  const auto request = parse_http_request(raw);
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request.value().path, "/a b");
  EXPECT_EQ(request.value().param("x"), "&amp");
}

TEST(HttpParse, RejectsGarbage) {
  EXPECT_FALSE(parse_http_request(to_bytes("not http at all")).is_ok());
  EXPECT_FALSE(parse_http_request(to_bytes("GET\r\n\r\n")).is_ok());
  EXPECT_FALSE(parse_http_request(to_bytes("GET / SPDY/9\r\n\r\n")).is_ok());
  EXPECT_FALSE(parse_http_request({}).is_ok());
}

TEST(HttpParse, ResponseSerialization) {
  const Bytes response = make_http_response(200, "OK", "text/plain", "hello");
  const std::string text = to_string(response);
  EXPECT_TRUE(text.starts_with("HTTP/1.1 200 OK\r\n"));
  EXPECT_NE(text.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(text.ends_with("\r\n\r\nhello"));
}

// ---- frontend over real sockets ------------------------------------------------------

class HttpFrontendTest : public ::testing::Test {
 protected:
  HttpFrontendTest()
      : log_([] {
          dataset::SyntheticLogConfig config;
          config.num_users = 20;
          config.total_queries = 1'500;
          config.vocab_size = 800;
          config.num_topics = 10;
          config.words_per_topic = 60;
          return dataset::generate_synthetic_log(config);
        }()),
        corpus_(log_, engine::CorpusConfig{.seed = 21, .num_documents = 800}),
        engine_(corpus_),
        authority_(to_bytes("http-root")),
        proxy_(&engine_, authority_, make_options()) {}

  static core::XSearchProxy::Options make_options() {
    core::XSearchProxy::Options options;
    options.k = 2;
    options.history_capacity = 5'000;
    return options;
  }

  std::string http_get(std::uint16_t port, const std::string& target,
                       int* status = nullptr) {
    auto stream = TcpStream::connect("127.0.0.1", port);
    EXPECT_TRUE(stream.is_ok());
    const std::string request = "GET " + target + " HTTP/1.1\r\nHost: l\r\n\r\n";
    EXPECT_TRUE(stream.value().write_all(to_bytes(request)).is_ok());
    auto body = read_http_response_body(stream.value(), status);
    EXPECT_TRUE(body.is_ok()) << body.status().to_string();
    return body.value_or("");
  }

  dataset::QueryLog log_;
  engine::Corpus corpus_;
  engine::SearchEngine engine_;
  sgx::AttestationAuthority authority_;
  core::XSearchProxy proxy_;
};

TEST_F(HttpFrontendTest, HealthCheck) {
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok()) << frontend.status().to_string();
  int status = 0;
  EXPECT_EQ(http_get(frontend.value()->port(), "/healthz", &status), "ok\n");
  EXPECT_EQ(status, 200);
  frontend.value()->stop();
}

TEST_F(HttpFrontendTest, SearchReturnsJson) {
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok());
  const std::string query = log_.records()[3].text;
  int status = 0;
  const std::string body = http_get(frontend.value()->port(),
                                    "/search?q=" + url_encode(query), &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"results\":["), std::string::npos);
  EXPECT_NE(body.find("\"title\""), std::string::npos);
  frontend.value()->stop();
}

TEST_F(HttpFrontendTest, MissingQueryIs400) {
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok());
  int status = 0;
  (void)http_get(frontend.value()->port(), "/search", &status);
  EXPECT_EQ(status, 400);
  frontend.value()->stop();
}

TEST_F(HttpFrontendTest, UnknownPathIs404) {
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok());
  int status = 0;
  (void)http_get(frontend.value()->port(), "/nope", &status);
  EXPECT_EQ(status, 404);
  frontend.value()->stop();
}

TEST_F(HttpFrontendTest, NonGetIs405) {
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok());
  auto stream = TcpStream::connect("127.0.0.1", frontend.value()->port());
  ASSERT_TRUE(stream.is_ok());
  ASSERT_TRUE(stream.value()
                  .write_all(to_bytes("POST /search HTTP/1.1\r\nHost: l\r\n"
                                      "Content-Length: 0\r\n\r\n"))
                  .is_ok());
  int status = 0;
  (void)read_http_response_body(stream.value(), &status);
  EXPECT_EQ(status, 405);
  frontend.value()->stop();
}

TEST_F(HttpFrontendTest, KeepAliveServesMultipleRequests) {
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok());
  auto stream = TcpStream::connect("127.0.0.1", frontend.value()->port());
  ASSERT_TRUE(stream.is_ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stream.value()
                    .write_all(to_bytes("GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n"))
                    .is_ok());
    int status = 0;
    const auto body = read_http_response_body(stream.value(), &status);
    ASSERT_TRUE(body.is_ok());
    EXPECT_EQ(status, 200);
  }
  frontend.value()->stop();
  EXPECT_GE(frontend.value()->requests_served(), 3u);
}

TEST_F(HttpFrontendTest, QueriesGoThroughObfuscation) {
  std::vector<std::string> observed;
  engine_.set_observer([&observed](std::string_view q) { observed.emplace_back(q); });
  auto frontend = HttpFrontend::start(proxy_, authority_);
  ASSERT_TRUE(frontend.is_ok());
  // Warm the proxy history through the HTTP path itself.
  for (std::size_t i = 0; i < 10; ++i) {
    (void)http_get(frontend.value()->port(),
                   "/search?q=" + url_encode(log_.records()[i].text));
  }
  observed.clear();
  const std::string secret = log_.records()[77].text;
  (void)http_get(frontend.value()->port(), "/search?q=" + url_encode(secret));
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_NE(observed[0], secret);
  EXPECT_NE(observed[0].find(" OR "), std::string::npos);
  frontend.value()->stop();
}

}  // namespace
}  // namespace xsearch::net
