#include <gtest/gtest.h>

#include <filesystem>
#include <unordered_set>

#include "dataset/query_log.hpp"
#include "dataset/synthetic.hpp"
#include "text/tokenizer.hpp"

namespace xsearch::dataset {
namespace {

QueryLog small_log() {
  return QueryLog({{1, 10, "alpha"},
                   {2, 5, "beta"},
                   {1, 20, "gamma"},
                   {3, 15, "delta"},
                   {1, 30, "epsilon"}});
}

TEST(QueryLog, SortsByTimestamp) {
  const QueryLog log = small_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.records().front().text, "beta");
  EXPECT_EQ(log.records().back().text, "epsilon");
}

TEST(QueryLog, UsersSorted) {
  EXPECT_EQ(small_log().users(), (std::vector<UserId>{1, 2, 3}));
}

TEST(QueryLog, UserQueryCount) {
  const QueryLog log = small_log();
  EXPECT_EQ(log.user_query_count(1), 3u);
  EXPECT_EQ(log.user_query_count(2), 1u);
  EXPECT_EQ(log.user_query_count(99), 0u);
}

TEST(QueryLog, QueriesOfUserInTimeOrder) {
  EXPECT_EQ(small_log().queries_of(1),
            (std::vector<std::string>{"alpha", "gamma", "epsilon"}));
}

TEST(QueryLog, AppendKeepsOrder) {
  QueryLog log = small_log();
  log.append({4, 1, "first"});
  EXPECT_EQ(log.records().front().text, "first");
  log.append({4, 100, "last"});
  EXPECT_EQ(log.records().back().text, "last");
}

TEST(QueryLog, MostActiveUsers) {
  const QueryLog log = small_log();
  const auto top = log.most_active_users(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);  // 3 queries
}

TEST(QueryLog, MostActiveUsersDeterministicTieBreak) {
  const QueryLog log = small_log();
  const auto top = log.most_active_users(3);
  EXPECT_EQ(top, (std::vector<UserId>{1, 2, 3}));  // ties by id
}

TEST(QueryLog, FilterUsers) {
  const QueryLog filtered = small_log().filter_users({1, 3});
  EXPECT_EQ(filtered.size(), 4u);
  EXPECT_EQ(filtered.users(), (std::vector<UserId>{1, 3}));
}

TEST(QueryLog, SplitPerUserFractions) {
  std::vector<QueryRecord> records;
  for (int i = 0; i < 9; ++i) {
    records.push_back({1, i, "q" + std::to_string(i)});
  }
  const auto split = split_per_user(QueryLog(std::move(records)), 2.0 / 3.0);
  EXPECT_EQ(split.train.size(), 6u);
  EXPECT_EQ(split.test.size(), 3u);
  // Training queries strictly precede test queries in time.
  EXPECT_EQ(split.train.records().back().text, "q5");
  EXPECT_EQ(split.test.records().front().text, "q6");
}

TEST(QueryLog, SplitHandlesTinyUsers) {
  const auto split = split_per_user(QueryLog({{1, 0, "only"}}), 2.0 / 3.0);
  EXPECT_EQ(split.train.size(), 0u);
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(QueryLog, TsvRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "xs_test_log.tsv";
  const QueryLog log = small_log();
  ASSERT_TRUE(save_tsv(log, path).is_ok());
  const auto loaded = load_tsv(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().records(), log.records());
  std::filesystem::remove(path);
}

TEST(QueryLog, LoadMissingFileFails) {
  EXPECT_FALSE(load_tsv("/nonexistent/path/queries.tsv").is_ok());
}

// ---- synthetic generator ----------------------------------------------------

SyntheticLogConfig tiny_config() {
  SyntheticLogConfig config;
  config.num_users = 50;
  config.total_queries = 5000;
  config.vocab_size = 2000;
  config.num_topics = 20;
  config.words_per_topic = 100;
  return config;
}

TEST(Synthetic, GeneratesRequestedSize) {
  const QueryLog log = generate_synthetic_log(tiny_config());
  EXPECT_EQ(log.size(), 5000u);
}

TEST(Synthetic, DeterministicInSeed) {
  const QueryLog a = generate_synthetic_log(tiny_config());
  const QueryLog b = generate_synthetic_log(tiny_config());
  EXPECT_EQ(a.records(), b.records());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto config = tiny_config();
  const QueryLog a = generate_synthetic_log(config);
  config.seed ^= 0xdead;
  const QueryLog b = generate_synthetic_log(config);
  EXPECT_NE(a.records(), b.records());
}

TEST(Synthetic, TimestampsWithinWindowAndSorted) {
  const auto config = tiny_config();
  const QueryLog log = generate_synthetic_log(config);
  std::int64_t prev = config.start_timestamp;
  for (const auto& r : log.records()) {
    EXPECT_GE(r.timestamp, prev);
    EXPECT_LE(r.timestamp, config.start_timestamp + config.duration_seconds + 60);
    prev = r.timestamp;
  }
}

TEST(Synthetic, ActivityIsHeavyTailed) {
  const QueryLog log = generate_synthetic_log(tiny_config());
  const auto top = log.most_active_users(5);
  ASSERT_EQ(top.size(), 5u);
  // The most active user should dwarf the median user.
  std::vector<std::size_t> counts;
  for (const UserId u : log.users()) counts.push_back(log.user_query_count(u));
  std::sort(counts.begin(), counts.end());
  EXPECT_GT(log.user_query_count(top[0]), 4 * counts[counts.size() / 2]);
}

TEST(Synthetic, UsersRepeatQueries) {
  const QueryLog log = generate_synthetic_log(tiny_config());
  const auto top = log.most_active_users(1);
  const auto queries = log.queries_of(top[0]);
  std::unordered_set<std::string> distinct(queries.begin(), queries.end());
  // Repetition: distinct queries are clearly fewer than total queries.
  EXPECT_LT(distinct.size(), queries.size() * 4 / 5);
}

TEST(Synthetic, QueriesAreShort) {
  const QueryLog log = generate_synthetic_log(tiny_config());
  for (std::size_t i = 0; i < 100; ++i) {
    const auto& text = log.records()[i * 37 % log.size()].text;
    const auto words = text::tokenize(text).size();
    EXPECT_GE(words, 1u);
    EXPECT_LE(words, 6u);
  }
}

TEST(Synthetic, NoEmptyQueries) {
  const QueryLog log = generate_synthetic_log(tiny_config());
  for (const auto& r : log.records()) EXPECT_FALSE(r.text.empty());
}

TEST(Synthetic, VocabularyShared) {
  // Different users share a common vocabulary (needed for co-occurrence
  // statistics and for X-Search fakes to be plausible for other users).
  const QueryLog log = generate_synthetic_log(tiny_config());
  const auto top = log.most_active_users(2);
  std::unordered_set<std::string> words_a, words_b;
  for (const auto& q : log.queries_of(top[0])) {
    for (auto& t : text::tokenize(q)) words_a.insert(std::move(t));
  }
  for (const auto& q : log.queries_of(top[1])) {
    for (auto& t : text::tokenize(q)) words_b.insert(std::move(t));
  }
  std::size_t shared = 0;
  for (const auto& w : words_a) shared += words_b.contains(w);
  EXPECT_GT(shared, 0u);
}

}  // namespace
}  // namespace xsearch::dataset
