#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace xsearch::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  const Bytes key = hex_decode("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const Bytes data(50, 0xcd);
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// Key longer than the block size is hashed first.
TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Bytes data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  const Bytes data = to_bytes(
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(hex_encode(hmac_sha256(key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes data = to_bytes("message");
  EXPECT_NE(hmac_sha256(to_bytes("key1"), data), hmac_sha256(to_bytes("key2"), data));
}

// RFC 5869 test vectors for HKDF-SHA256.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex_decode("000102030405060708090a0b0c");
  const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  const SecretBytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(hex_encode(okm.expose(SecretSink::kTestVector)),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case2LongInputs) {
  Bytes ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));
  const SecretBytes okm = hkdf(salt, ikm, info, 82);
  EXPECT_EQ(hex_encode(okm.expose(SecretSink::kTestVector)),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87");
}

TEST(Hkdf, Rfc5869Case3ZeroSaltInfo) {
  const Bytes ikm(22, 0x0b);
  const SecretBytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(hex_encode(okm.expose(SecretSink::kTestVector)),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthExact) {
  for (std::size_t len : {1u, 31u, 32u, 33u, 64u, 255u}) {
    EXPECT_EQ(hkdf(to_bytes("salt"), to_bytes("ikm"), to_bytes("info"), len).size(), len);
  }
}

TEST(Hkdf, InfoSeparatesKeys) {
  const SecretBytes a = hkdf(to_bytes("s"), to_bytes("ikm"), to_bytes("client"), 32);
  const SecretBytes b = hkdf(to_bytes("s"), to_bytes("ikm"), to_bytes("server"), 32);
  EXPECT_FALSE(constant_time_equal(a, b.expose(SecretSink::kTestVector)));
}

}  // namespace
}  // namespace xsearch::crypto
