// FleetSupervisor tests: heartbeat probing, automatic drain→respawn→restore
// of a crashed worker, fleet-level recovery counters (auto_respawns,
// restore hits/misses, warm_start_ratio), and the graceful rolling-restart
// path (drain seals a final checkpoint). Run under ThreadSanitizer in CI
// (label: concurrency).
#include "net/fleet_supervisor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/mutex.hpp"
#include "net/proxy_fleet.hpp"
#include "sgx/attestation.hpp"
#include "test_util.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"

namespace xsearch::net {
namespace {

using testutil::eventually;

class FleetSupervisorTest : public ::testing::Test {
 protected:
  FleetSupervisorTest()
      : dir_(std::filesystem::temp_directory_path() /
             ("xs_supervisor_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()))),
        authority_(to_bytes("supervisor-test-root")) {
    std::filesystem::remove_all(dir_);
  }
  ~FleetSupervisorTest() override { std::filesystem::remove_all(dir_); }

  ProxyFleet::Options fleet_options(std::size_t workers,
                                    bool checkpointing = true) const {
    ProxyFleet::Options options;
    options.workers = workers;
    options.proxy.k = 2;
    options.proxy.history_capacity = 4096;
    options.proxy.contact_engine = false;
    if (checkpointing) {
      options.proxy.checkpoint_dir = dir_;
      options.proxy.checkpoint_interval_queries = 4;
    }
    return options;
  }

  static FleetSupervisor::Options fast_probe() {
    FleetSupervisor::Options options;
    options.probe_interval = 2 * kMilli;
    options.failure_threshold = 2;
    return options;
  }

  std::filesystem::path dir_;
  sgx::AttestationAuthority authority_;
};

TEST_F(FleetSupervisorTest, HealthyFleetIsProbedNotRespawned) {
  auto fleet = ProxyFleet::create(nullptr, authority_, fleet_options(2));
  ASSERT_TRUE(fleet.is_ok());
  FleetSupervisor supervisor(*fleet.value(), fast_probe());
  EXPECT_TRUE(eventually([&] { return supervisor.stats().probes >= 6; }));
  supervisor.stop();
  const auto stats = supervisor.stats();
  EXPECT_EQ(stats.probe_failures, 0u);
  EXPECT_EQ(stats.auto_respawns, 0u);
  EXPECT_EQ(fleet.value()->fleet_stats().auto_respawns, 0u);
}

TEST_F(FleetSupervisorTest, CrashedWorkerIsRespawnedWarm) {
  auto fleet = ProxyFleet::create(nullptr, authority_, fleet_options(2));
  ASSERT_TRUE(fleet.is_ok());

  // Park a session on a known worker and warm its history past the
  // checkpoint interval.
  core::ClientBroker broker(*fleet.value(), authority_,
                            fleet.value()->measurement(), 1);
  ASSERT_TRUE(broker.connect().is_ok());
  const std::size_t victim = fleet.value()->owner_of(broker.session_id());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(broker.search("warmup " + std::to_string(i)).is_ok());
  }
  const std::size_t checkpointed_depth = 8;  // interval 4, 9 queries → seal at 8
  EXPECT_EQ(fleet.value()->worker_stats(victim).checkpoint.written, 2u);

  FleetSupervisor supervisor(*fleet.value(), fast_probe());
  ASSERT_TRUE(fleet.value()->kill_worker(victim).is_ok());

  EXPECT_TRUE(
      eventually([&] { return fleet.value()->fleet_stats().auto_respawns >= 1; }));
  supervisor.stop();
  EXPECT_GE(supervisor.stats().probe_failures, 2u);
  EXPECT_GE(supervisor.stats().auto_respawns, 1u);

  // Warm restart: the respawned worker's history depth equals the
  // checkpointed depth — the acceptance bar of the recovery subsystem.
  const auto stats = fleet.value()->fleet_stats();
  EXPECT_GE(stats.restore_hits, 1u);
  EXPECT_EQ(stats.restore_misses, 0u);
  EXPECT_DOUBLE_EQ(stats.warm_start_ratio, 1.0);
  EXPECT_EQ(fleet.value()->worker_history_depth(victim), checkpointed_depth);
  EXPECT_TRUE(fleet.value()->worker_stats(victim).live);
  EXPECT_EQ(fleet.value()->live_workers(), 2u);

  // The arc re-attests: the broker's next search lands after exactly one
  // transparent re-handshake.
  EXPECT_TRUE(broker.search("after recovery").is_ok());
}

TEST_F(FleetSupervisorTest, ColdRespawnCountsAsMiss) {
  auto fleet = ProxyFleet::create(nullptr, authority_,
                                  fleet_options(2, /*checkpointing=*/false));
  ASSERT_TRUE(fleet.is_ok());
  FleetSupervisor supervisor(*fleet.value(), fast_probe());
  ASSERT_TRUE(fleet.value()->kill_worker(0).is_ok());
  EXPECT_TRUE(
      eventually([&] { return fleet.value()->fleet_stats().auto_respawns >= 1; }));
  supervisor.stop();
  const auto stats = fleet.value()->fleet_stats();
  EXPECT_EQ(stats.restore_hits, 0u);
  EXPECT_GE(stats.restore_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.warm_start_ratio, 0.0);
  EXPECT_EQ(fleet.value()->worker_history_depth(0), 0u);  // cold
}

TEST_F(FleetSupervisorTest, DrainSealsFinalCheckpointForRollingRestart) {
  auto fleet = ProxyFleet::create(nullptr, authority_, fleet_options(2));
  ASSERT_TRUE(fleet.is_ok());
  core::ClientBroker broker(*fleet.value(), authority_,
                            fleet.value()->measurement(), 2);
  ASSERT_TRUE(broker.connect().is_ok());
  const std::size_t target = fleet.value()->owner_of(broker.session_id());
  // 6 queries with interval 4: the periodic path sealed at depth 4 only.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(broker.search("rolling " + std::to_string(i)).is_ok());
  }

  // Graceful drain seals the full depth; the respawn restores all 6 —
  // a rolling restart loses nothing, crash recovery loses at most one
  // interval.
  ASSERT_TRUE(fleet.value()->drain(target).is_ok());
  ASSERT_TRUE(fleet.value()->respawn(target).is_ok());
  EXPECT_EQ(fleet.value()->worker_history_depth(target), 6u);
  EXPECT_GE(fleet.value()->fleet_stats().restore_hits, 1u);
  EXPECT_TRUE(broker.search("after rolling restart").is_ok());
}

TEST_F(FleetSupervisorTest, HungWorkerProbeTimesOutAndIsRespawned) {
  // A HUNG enclave (wedged ecall, not a crashed one) used to block the
  // probe loop forever. The probe deadline turns it into a detectable
  // failure: timeout-counted probes, a drain WITHOUT the final seal, and a
  // respawn — while the healthy worker keeps answering.
  auto fleet = ProxyFleet::create(nullptr, authority_,
                                  fleet_options(2, /*checkpointing=*/false));
  ASSERT_TRUE(fleet.is_ok());

  // Wedge worker 0's `request` ecall (heartbeats route through it): every
  // probe parks until the gate releases. Host-side fault injection via the
  // same re-register seam the failure-injection tests use.
  struct HangGate {
    Mutex mutex;
    CondVar cv;
    bool released = false;
  };
  auto gate = std::make_shared<HangGate>();
  auto victim = fleet.value()->worker_proxy(0);
  ASSERT_NE(victim, nullptr);
  victim->host_enclave().register_ecall(
      sgx::EcallId::kRequest, [gate](ByteSpan) -> Result<Bytes> {
        MutexLock lock(gate->mutex);
        while (!gate->released) gate->cv.wait(gate->mutex);
        return unavailable("wedged enclave released");
      });

  auto options = fast_probe();
  options.probe_budget = 20 * kMilli;
  FleetSupervisor supervisor(*fleet.value(), options);

  EXPECT_TRUE(
      eventually([&] { return fleet.value()->fleet_stats().auto_respawns >= 1; }));
  EXPECT_TRUE(
      eventually([&] { return supervisor.stats().probe_timeouts >= 2; }));

  // The replacement answers probes; the healthy worker was never starved
  // behind the hung probe.
  EXPECT_TRUE(eventually([&] { return fleet.value()->heartbeat(0).is_ok(); }));
  EXPECT_TRUE(fleet.value()->heartbeat(1).is_ok());
  EXPECT_TRUE(fleet.value()->worker_stats(0).live);
  EXPECT_EQ(fleet.value()->live_workers(), 2u);

  // Release the wedged ecall BEFORE stopping: stop() joins the abandoned
  // prober, which is still parked inside it.
  {
    MutexLock lock(gate->mutex);
    gate->released = true;
    gate->cv.notify_all();
  }
  supervisor.stop();
  const auto stats = supervisor.stats();
  EXPECT_GE(stats.probe_timeouts, 2u);
  EXPECT_GE(stats.probe_failures, stats.probe_timeouts);
  EXPECT_GE(stats.auto_respawns, 1u);
}

TEST_F(FleetSupervisorTest, FleetRestartOverExistingCheckpointsIsWarm) {
  {
    auto fleet = ProxyFleet::create(nullptr, authority_, fleet_options(2));
    ASSERT_TRUE(fleet.is_ok());
    core::ClientBroker broker(*fleet.value(), authority_,
                              fleet.value()->measurement(), 3);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(broker.search("persisted " + std::to_string(i)).is_ok());
    }
    // Graceful fleet shutdown: drain is refused for the last live worker,
    // so seal explicitly through the per-worker stats... the workers'
    // periodic checkpoints (interval 4) are already on disk.
  }
  auto fleet = ProxyFleet::create(nullptr, authority_, fleet_options(2));
  ASSERT_TRUE(fleet.is_ok());
  // The worker that served the session restored its periodic checkpoint.
  std::size_t restored_total = 0;
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    restored_total += fleet.value()->worker_history_depth(w);
  }
  EXPECT_EQ(restored_total, 8u);  // newest periodic seal (interval 4)
  EXPECT_GE(fleet.value()->fleet_stats().restore_hits, 1u);
}

}  // namespace
}  // namespace xsearch::net
