#include "text/tokenizer.hpp"

#include <gtest/gtest.h>

namespace xsearch::text {
namespace {

TEST(Tokenizer, BasicSplit) {
  EXPECT_EQ(tokenize("hello world"), (std::vector<std::string>{"hello", "world"}));
}

TEST(Tokenizer, Lowercases) {
  EXPECT_EQ(tokenize("Hello WORLD"), (std::vector<std::string>{"hello", "world"}));
}

TEST(Tokenizer, SplitsOnPunctuation) {
  EXPECT_EQ(tokenize("back-pain, treatment?"),
            (std::vector<std::string>{"back", "pain", "treatment"}));
}

TEST(Tokenizer, KeepsDigits) {
  EXPECT_EQ(tokenize("windows 98 drivers"),
            (std::vector<std::string>{"windows", "98", "drivers"}));
}

TEST(Tokenizer, EmptyInput) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("   ...   ").empty());
}

TEST(Tokenizer, StopwordsFiltered) {
  EXPECT_EQ(tokenize_no_stopwords("the best of the best"),
            (std::vector<std::string>{"best", "best"}));
}

TEST(Tokenizer, IsStopword) {
  EXPECT_TRUE(is_stopword("the"));
  EXPECT_TRUE(is_stopword("and"));
  EXPECT_FALSE(is_stopword("privacy"));
}

TEST(Tokenizer, CommonWordCountBasic) {
  EXPECT_EQ(common_word_count("private web search", "web search engine"), 2u);
}

TEST(Tokenizer, CommonWordCountCaseInsensitive) {
  EXPECT_EQ(common_word_count("Private WEB", "web private"), 2u);
}

TEST(Tokenizer, CommonWordCountNoOverlap) {
  EXPECT_EQ(common_word_count("alpha beta", "gamma delta"), 0u);
}

TEST(Tokenizer, CommonWordCountDistinctWordsOnly) {
  // Repeated matches count once (set semantics, as in Algorithm 2).
  EXPECT_EQ(common_word_count("cat", "cat cat cat"), 1u);
}

TEST(Tokenizer, CommonWordCountEmpty) {
  EXPECT_EQ(common_word_count("", "anything"), 0u);
  EXPECT_EQ(common_word_count("anything", ""), 0u);
}

}  // namespace
}  // namespace xsearch::text
