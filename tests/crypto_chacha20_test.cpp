#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.hpp"

namespace xsearch::crypto {
namespace {

ChaChaKey key_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  ChaChaKey::Raw raw{};
  std::memcpy(raw.data(), b.data(), raw.size());
  return ChaChaKey::absorb(raw);
}

ChaChaNonce nonce_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  ChaChaNonce n{};
  std::memcpy(n.data(), b.data(), n.size());
  return n;
}

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, BlockFunctionRfc8439) {
  const auto key =
      key_from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce_from_hex("000000090000004a00000000");
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(hex_encode(block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2 encryption test vector.
TEST(ChaCha20, EncryptionRfc8439) {
  const auto key =
      key_from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = nonce_from_hex("000000000000004a00000000");
  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only one "
      "tip for the future, sunscreen would be it.");
  const Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(hex_encode(ciphertext),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, DecryptIsInverse) {
  const auto key = key_from_hex(
      "1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b1b");
  const auto nonce = nonce_from_hex("0102030405060708090a0b0c");
  const Bytes msg = to_bytes("round trip me please");
  const Bytes ct = chacha20_xor(key, nonce, 7, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_xor(key, nonce, 7, ct), msg);
}

TEST(ChaCha20, EmptyInput) {
  const auto key = key_from_hex(
      "0000000000000000000000000000000000000000000000000000000000000000");
  const auto nonce = nonce_from_hex("000000000000000000000000");
  EXPECT_TRUE(chacha20_xor(key, nonce, 0, {}).empty());
}

TEST(ChaCha20, NonBlockAlignedLengths) {
  const auto key = key_from_hex(
      "2222222222222222222222222222222222222222222222222222222222222222");
  const auto nonce = nonce_from_hex("000000000000000000000001");
  for (std::size_t len : {1u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u}) {
    const Bytes msg(len, 0x5a);
    const Bytes ct = chacha20_xor(key, nonce, 0, msg);
    ASSERT_EQ(ct.size(), len);
    EXPECT_EQ(chacha20_xor(key, nonce, 0, ct), msg) << "len=" << len;
  }
}

TEST(ChaCha20, CounterOffsetsKeystream) {
  const auto key = key_from_hex(
      "3333333333333333333333333333333333333333333333333333333333333333");
  const auto nonce = nonce_from_hex("000000000000000000000002");
  // Encrypting 128 bytes at counter 0 should equal two 64-byte encryptions
  // at counters 0 and 1.
  const Bytes msg(128, 0);
  const Bytes full = chacha20_xor(key, nonce, 0, msg);
  const Bytes first = chacha20_xor(key, nonce, 0, Bytes(64, 0));
  const Bytes second = chacha20_xor(key, nonce, 1, Bytes(64, 0));
  Bytes combined = first;
  append(combined, second);
  EXPECT_EQ(full, combined);
}

TEST(ChaCha20, DifferentNoncesDifferentStreams) {
  const auto key = key_from_hex(
      "4444444444444444444444444444444444444444444444444444444444444444");
  const Bytes msg(64, 0);
  const Bytes a = chacha20_xor(key, nonce_from_hex("000000000000000000000000"), 0, msg);
  const Bytes b = chacha20_xor(key, nonce_from_hex("000000000000000000000001"), 0, msg);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace xsearch::crypto
