#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace xsearch {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  constexpr int kDraws = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(99);
  Rng child1 = a.fork();
  Rng b(99);
  Rng child2 = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (std::size_t r = 0; r < zipf.size(); ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsMostProbable) {
  const ZipfSampler zipf(1000, 1.1);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
  EXPECT_GT(zipf.pmf(10), zipf.pmf(999));
}

TEST(Zipf, EmpiricalMatchesPmf) {
  const ZipfSampler zipf(50, 1.0);
  Rng rng(23);
  constexpr int kDraws = 200000;
  std::map<std::size_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    const double expected = zipf.pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 30);
  }
}

TEST(Zipf, SingleElement) {
  const ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, HighExponentConcentratesMass) {
  const ZipfSampler flat(100, 0.1);
  const ZipfSampler steep(100, 2.5);
  EXPECT_GT(steep.pmf(0), flat.pmf(0));
}

}  // namespace
}  // namespace xsearch
