// ProxyFleet and batched-wire tests.
//
//  * wire: batch frame round trips, truncated/oversized-batch rejection;
//  * fleet: consistent-hash routing keeps every session pinned to one
//    worker while sessions fan out across workers; per-session record
//    order survives 8 concurrent sessions across 4 workers (the channel
//    nonce counters make reordering an AEAD failure, so success IS the
//    ordering proof);
//  * drain/respawn: only the drained/crashed worker's sessions re-attest;
//  * client-side coalescing: batch_coalesce folds many submits into few
//    wire records.
//
// Run under ThreadSanitizer in CI (label: concurrency).
#include "net/proxy_fleet.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "api/remote.hpp"
#include "net/proxy_server.hpp"
#include "net/remote_broker.hpp"
#include "sgx/attestation.hpp"
#include "xsearch/broker.hpp"
#include "xsearch/proxy.hpp"
#include "xsearch/wire.hpp"

namespace xsearch::net {
namespace {

core::XSearchProxy::Options saturation_options() {
  core::XSearchProxy::Options options;
  options.k = 2;
  options.history_capacity = 4096;
  options.contact_engine = false;  // isolate the proxy/session/routing path
  return options;
}

ProxyFleet::Options fleet_options(std::size_t workers) {
  ProxyFleet::Options options;
  options.workers = workers;
  options.proxy = saturation_options();
  return options;
}

// --- wire batch framing ------------------------------------------------------

TEST(WireBatch, QueryBatchRoundTrip) {
  const std::vector<std::string> queries = {"first query", "", "third query"};
  const Bytes framed = core::wire::frame_query_batch(queries);
  auto message = core::wire::parse_client_message(framed);
  ASSERT_TRUE(message.is_ok()) << message.status().to_string();
  EXPECT_EQ(message.value().type, core::wire::ClientMessageType::kQueryBatch);
  EXPECT_EQ(message.value().queries, queries);
}

TEST(WireBatch, ResultsBatchRoundTripMixedOutcomes) {
  std::vector<core::wire::BatchItem> items(3);
  items[0].ok = true;
  engine::SearchResult r;
  r.doc = 7;
  r.title = "title";
  r.description = "description";
  r.url = "https://example.test/7";
  r.score = 0.25;
  items[0].results.push_back(r);
  items[1].ok = false;
  items[1].error = "engine unavailable";
  items[2].ok = true;  // empty result list

  const Bytes framed = core::wire::frame_results_batch(items);
  auto message = core::wire::parse_client_message(framed);
  ASSERT_TRUE(message.is_ok()) << message.status().to_string();
  EXPECT_EQ(message.value().type, core::wire::ClientMessageType::kResultsBatch);
  ASSERT_EQ(message.value().batch.size(), 3u);
  EXPECT_TRUE(message.value().batch[0].ok);
  ASSERT_EQ(message.value().batch[0].results.size(), 1u);
  EXPECT_EQ(message.value().batch[0].results[0].doc, 7u);
  EXPECT_EQ(message.value().batch[0].results[0].url, "https://example.test/7");
  EXPECT_FALSE(message.value().batch[1].ok);
  EXPECT_EQ(message.value().batch[1].error, "engine unavailable");
  EXPECT_TRUE(message.value().batch[2].ok);
  EXPECT_TRUE(message.value().batch[2].results.empty());
}

TEST(WireBatch, TruncatedBatchRejected) {
  const Bytes framed =
      core::wire::frame_query_batch({"a query", "another query"});
  // Every strict prefix must be rejected, never read out of bounds.
  for (std::size_t cut = 1; cut < framed.size(); ++cut) {
    auto message =
        core::wire::parse_client_message(ByteSpan(framed.data(), cut));
    EXPECT_FALSE(message.is_ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(WireBatch, TrailingBytesRejected) {
  Bytes framed = core::wire::frame_query_batch({"a query"});
  framed.push_back(0x00);
  EXPECT_FALSE(core::wire::parse_client_message(framed).is_ok());
}

TEST(WireBatch, OversizedAndEmptyBatchRejected) {
  // Hand-built header claiming too many queries: rejected on the count,
  // before any allocation proportional to it.
  Bytes oversized;
  oversized.push_back(
      static_cast<std::uint8_t>(core::wire::ClientMessageType::kQueryBatch));
  core::wire::put_u32(oversized,
                      static_cast<std::uint32_t>(core::wire::kMaxBatchQueries + 1));
  EXPECT_FALSE(core::wire::parse_client_message(oversized).is_ok());

  Bytes empty;
  empty.push_back(
      static_cast<std::uint8_t>(core::wire::ClientMessageType::kQueryBatch));
  core::wire::put_u32(empty, 0);
  EXPECT_FALSE(core::wire::parse_client_message(empty).is_ok());
}

// --- fleet routing -----------------------------------------------------------

TEST(ProxyFleet, RejectsDegenerateOptions) {
  sgx::AttestationAuthority authority(to_bytes("fleet-test-root"));
  EXPECT_FALSE(ProxyFleet::create(nullptr, authority, fleet_options(0)).is_ok());
  ProxyFleet::Options no_nodes = fleet_options(2);
  no_nodes.virtual_nodes = 0;
  EXPECT_FALSE(ProxyFleet::create(nullptr, authority, no_nodes).is_ok());
}

TEST(ProxyFleet, SessionsFanOutAndStayPinned) {
  sgx::AttestationAuthority authority(to_bytes("fleet-test-root"));
  auto fleet = ProxyFleet::create(nullptr, authority, fleet_options(4));
  ASSERT_TRUE(fleet.is_ok()) << fleet.status().to_string();

  // In-process brokers against the fleet (ClientBroker speaks to any
  // ProxyHandler). Every query of a session must reach the same worker.
  std::set<std::size_t> workers_used;
  for (int s = 0; s < 16; ++s) {
    core::ClientBroker broker(*fleet.value(), authority,
                              fleet.value()->measurement(), 100 + s);
    ASSERT_TRUE(broker.connect().is_ok());
    auto first = broker.search("pinned session probe");
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    ASSERT_TRUE(broker.search("pinned session probe 2").is_ok());
    EXPECT_EQ(broker.reconnects(), 0u);
  }
  std::uint64_t total_routed = 0;
  for (std::size_t w = 0; w < fleet.value()->worker_count(); ++w) {
    const auto stats = fleet.value()->worker_stats(w);
    total_routed += stats.routed;
    if (stats.sessions.created > 0) workers_used.insert(w);
    // Pinning: a worker only ever saw records for sessions it created, so
    // every routed request either created a session or found it (no
    // cross-worker misses).
    EXPECT_EQ(stats.sessions.misses, 0u) << "worker " << w;
  }
  // 16 handshakes + 32 query records all found their ring owner.
  EXPECT_EQ(total_routed, 16u + 32u);
  // 16 sessions over 4 workers with 64 vnodes: fan-out must reach several
  // workers (deterministic ids — this is a fixed property of the seed).
  EXPECT_GE(workers_used.size(), 2u);
}

// 8 concurrent sessions across 4 workers, each session issuing an ordered
// stream of single and batched queries over real TCP. The SecureChannel's
// per-direction nonce counters fail AEAD on any reorder, so every session
// finishing without a reconnect proves per-session record order survived
// concurrent fan-out.
TEST(ProxyFleet, EightConcurrentSessionsAcrossFourWorkersPreserveOrder) {
  sgx::AttestationAuthority authority(to_bytes("fleet-test-root"));
  auto fleet = ProxyFleet::create(nullptr, authority, fleet_options(4));
  ASSERT_TRUE(fleet.is_ok());
  auto server = ProxyServer::start(*fleet.value());
  ASSERT_TRUE(server.is_ok());

  constexpr std::size_t kSessions = 8;
  constexpr std::size_t kRounds = 10;
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> queries_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      RemoteBroker broker("127.0.0.1", server.value()->port(), authority,
                          fleet.value()->measurement(), 9100 + s);
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::string tag =
            "s" + std::to_string(s) + "r" + std::to_string(round);
        if (round % 2 == 0) {
          auto result = broker.search("single " + tag);
          if (!result.is_ok()) ++failures;
          else ++queries_ok;
        } else {
          auto batch = broker.search_batch(
              {"batch0 " + tag, "batch1 " + tag, "batch2 " + tag});
          if (!batch.is_ok()) {
            ++failures;
            continue;
          }
          for (const auto& outcome : batch.value()) {
            if (outcome.status.is_ok()) ++queries_ok;
            else ++failures;
          }
        }
      }
      if (broker.reconnects() != 0) ++failures;  // order break would desync
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0u);
  // Per session: kRounds/2 single queries + kRounds/2 batches of three.
  EXPECT_EQ(queries_ok.load(), kSessions * (kRounds / 2 * 3 + kRounds / 2));
  // All four workers stayed miss-free: no record was ever routed to a
  // worker that did not own its session.
  std::uint64_t created = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    const auto stats = fleet.value()->worker_stats(w);
    EXPECT_EQ(stats.sessions.misses, 0u);
    created += stats.sessions.created;
  }
  EXPECT_EQ(created, kSessions);
  server.value()->stop();
}

TEST(ProxyFleet, DrainMigratesOnlyTheDrainedWorkersSessions) {
  sgx::AttestationAuthority authority(to_bytes("fleet-test-root"));
  auto fleet = ProxyFleet::create(nullptr, authority, fleet_options(2));
  ASSERT_TRUE(fleet.is_ok());

  // Establish sessions until both workers own at least one.
  std::vector<std::unique_ptr<core::ClientBroker>> brokers;
  std::vector<std::size_t> owners;
  for (int s = 0; s < 8; ++s) {
    brokers.push_back(std::make_unique<core::ClientBroker>(
        *fleet.value(), authority, fleet.value()->measurement(), 500 + s));
    ASSERT_TRUE(brokers.back()->connect().is_ok());
    ASSERT_TRUE(brokers.back()->search("warm").is_ok());
  }
  for (std::size_t w = 0; w < 2; ++w) {
    ASSERT_GT(fleet.value()->worker_stats(w).sessions.created, 0u)
        << "seed produced a one-sided session split; adjust seeds";
  }

  // Who owns what before the drain (deterministic: ids and ring are pure
  // functions of the seeds).
  std::vector<std::size_t> owner_before;
  for (const auto& broker : brokers) {
    owner_before.push_back(fleet.value()->owner_of(broker->session_id()));
  }

  ASSERT_TRUE(fleet.value()->drain(0).is_ok());
  EXPECT_EQ(fleet.value()->live_workers(), 1u);
  // Draining the last live worker is refused.
  EXPECT_FALSE(fleet.value()->drain(1).is_ok());

  // Exactly the drained worker's sessions migrate: each hits "unknown
  // session" on worker 1 and transparently re-attests there (one
  // reconnect); worker-1 sessions never notice.
  for (std::size_t s = 0; s < brokers.size(); ++s) {
    ASSERT_TRUE(brokers[s]->search("after drain").is_ok());
    EXPECT_EQ(brokers[s]->reconnects(), owner_before[s] == 0 ? 1u : 0u)
        << "session " << s;
  }

  // Respawn restores worker 0's arc with a fresh enclave (empty table).
  ASSERT_TRUE(fleet.value()->respawn(0).is_ok());
  EXPECT_EQ(fleet.value()->live_workers(), 2u);
  EXPECT_EQ(fleet.value()->worker_stats(0).respawns, 1u);
  EXPECT_EQ(fleet.value()->worker_stats(0).sessions.created, 0u);

  // Again only sessions whose *current* id maps to the respawned (empty)
  // worker must re-attest; the rest proceed with zero new reconnects.
  std::vector<std::uint64_t> reconnects_before;
  std::vector<std::size_t> owner_now;
  for (const auto& broker : brokers) {
    reconnects_before.push_back(broker->reconnects());
    owner_now.push_back(fleet.value()->owner_of(broker->session_id()));
  }
  for (std::size_t s = 0; s < brokers.size(); ++s) {
    ASSERT_TRUE(brokers[s]->search("after respawn").is_ok());
    EXPECT_EQ(brokers[s]->reconnects() - reconnects_before[s],
              owner_now[s] == 0 ? 1u : 0u)
        << "session " << s;
  }
}

// A host-proposed id must not be able to corrupt a proxy whose counter
// later reaches the same id: the counter skips occupied ids (a silent
// collision used to orphan an LRU entry inside the session table).
TEST(ProxyFleet, CounterSessionIdsSkipHostProposedIds) {
  sgx::AttestationAuthority authority(to_bytes("fleet-test-root"));
  core::XSearchProxy proxy(nullptr, authority, saturation_options());
  crypto::X25519Key client_key{};
  client_key[0] = 9;

  ASSERT_TRUE(proxy.handshake(client_key, 2).is_ok());
  // Re-proposing an occupied id is refused, not silently remapped.
  EXPECT_FALSE(proxy.handshake(client_key, 2).is_ok());

  // Counter-assigned handshakes walk 1, (2 occupied → skip), 3, ...: all
  // succeed with distinct ids and the table stays consistent.
  std::set<std::uint64_t> ids = {2};
  for (int i = 0; i < 4; ++i) {
    auto response = proxy.handshake(client_key);
    ASSERT_TRUE(response.is_ok()) << response.status().to_string();
    EXPECT_TRUE(ids.insert(response.value().session_id).second)
        << "duplicate session id " << response.value().session_id;
  }
  EXPECT_EQ(proxy.session_stats().active, 5u);
}

// --- client-side coalescing --------------------------------------------------

TEST(ProxyFleet, ClientCoalescingFoldsSubmitsIntoBatchedFrames) {
  sgx::AttestationAuthority authority(to_bytes("fleet-test-root"));
  auto fleet = ProxyFleet::create(nullptr, authority, fleet_options(2));
  ASSERT_TRUE(fleet.is_ok());
  auto server = ProxyServer::start(*fleet.value());
  ASSERT_TRUE(server.is_ok());

  api::ClientConfig config;
  config.contact_engine = false;
  config.batch_workers = 2;
  config.batch_coalesce = 16;
  config.seed = 4242;
  auto client = api::make_remote_client("127.0.0.1", server.value()->port(),
                                        authority, fleet.value()->measurement(),
                                        config);
  ASSERT_TRUE(client->connect().is_ok());

  constexpr std::size_t kSubmits = 64;
  std::vector<api::Ticket> tickets;
  tickets.reserve(kSubmits);
  for (std::size_t i = 0; i < kSubmits; ++i) {
    tickets.push_back(client->submit("coalesce me " + std::to_string(i)));
    ASSERT_NE(tickets.back(), api::kInvalidTicket);
  }
  for (const auto ticket : tickets) {
    const auto outcome = client->wait(ticket);
    EXPECT_TRUE(outcome.status.is_ok()) << outcome.status.to_string();
  }
  const auto stats = client->stats();
  EXPECT_EQ(stats.submitted, kSubmits);
  EXPECT_EQ(stats.completed, kSubmits);
  client->close();

  // Coalescing must have folded the 64 submits into far fewer query
  // records than one-per-query (handshakes excluded from the bound).
  std::uint64_t routed = 0, handshakes = 0;
  for (std::size_t w = 0; w < 2; ++w) {
    const auto worker = fleet.value()->worker_stats(w);
    routed += worker.routed;
    handshakes += worker.sessions.created;
  }
  EXPECT_LT(routed - handshakes, kSubmits / 2);

  // Synchronous batch API agrees end to end as well.
  auto direct = api::make_remote_client("127.0.0.1", server.value()->port(),
                                        authority, fleet.value()->measurement(),
                                        config);
  auto outcomes = direct->search_batch(
      {{"sync batch a", 0}, {"sync batch b", 0}, {"sync batch c", 0}});
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  }
  direct->close();
  server.value()->stop();
}

}  // namespace
}  // namespace xsearch::net
