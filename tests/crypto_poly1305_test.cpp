#include "crypto/poly1305.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.hpp"

namespace xsearch::crypto {
namespace {

Poly1305Key key_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  Poly1305Key::Raw raw{};
  std::memcpy(raw.data(), b.data(), raw.size());
  return Poly1305Key::absorb(raw);
}

// RFC 8439 §2.5.2 test vector.
TEST(Poly1305, Rfc8439Vector) {
  const auto key = key_from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const Bytes msg = to_bytes("Cryptographic Forum Research Group");
  EXPECT_EQ(hex_encode(poly1305(key, msg)), "a8061dc1305136c6c22b8baf0c0127a9");
}

// RFC 8439 Appendix A.3 vector #1: all-zero key and message.
TEST(Poly1305, ZeroKeyZeroMessage) {
  const Poly1305Key key{};
  const Bytes msg(64, 0);
  EXPECT_EQ(hex_encode(poly1305(key, msg)), "00000000000000000000000000000000");
}

// RFC 8439 Appendix A.3 vector #2: r = 0, s = text, message = text.
TEST(Poly1305, Rfc8439A3Vector2) {
  const auto key = key_from_hex(
      "0000000000000000000000000000000036e5f6b5c5e06070f0efca96227a863e");
  const Bytes msg = to_bytes(
      "Any submission to the IETF intended by the Contributor for publication "
      "as all or part of an IETF Internet-Draft or RFC and any statement made "
      "within the context of an IETF activity is considered an \"IETF "
      "Contribution\". Such statements include oral statements in IETF "
      "sessions, as well as written and electronic communications made at any "
      "time or place, which are addressed to");
  EXPECT_EQ(hex_encode(poly1305(key, msg)), "36e5f6b5c5e06070f0efca96227a863e");
}

// RFC 8439 Appendix A.3 vector #3: r = text, s = 0.
TEST(Poly1305, Rfc8439A3Vector3) {
  const auto key = key_from_hex(
      "36e5f6b5c5e06070f0efca96227a863e00000000000000000000000000000000");
  const Bytes msg = to_bytes(
      "Any submission to the IETF intended by the Contributor for publication "
      "as all or part of an IETF Internet-Draft or RFC and any statement made "
      "within the context of an IETF activity is considered an \"IETF "
      "Contribution\". Such statements include oral statements in IETF "
      "sessions, as well as written and electronic communications made at any "
      "time or place, which are addressed to");
  EXPECT_EQ(hex_encode(poly1305(key, msg)), "f3477e7cd95417af89a6b8794c310cf0");
}

// RFC 8439 A.3 vector #4 exercises the wraparound of 2^130-5.
TEST(Poly1305, Rfc8439A3Vector4) {
  const auto key = key_from_hex(
      "1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dca5cbc207075c0");
  const Bytes msg = to_bytes(
      "'Twas brillig, and the slithy toves\nDid gyre and gimble in the "
      "wabe:\nAll mimsy were the borogoves,\nAnd the mome raths outgrabe.");
  EXPECT_EQ(hex_encode(poly1305(key, msg)), "4541669a7eaaee61e708dc7cbcc5eb62");
}

// A.3 vector #5: message 0xFF*16 with r = 2 forces maximal carries.
TEST(Poly1305, Rfc8439A3Vector5MaximalCarry) {
  const auto key = key_from_hex(
      "0200000000000000000000000000000000000000000000000000000000000000");
  const Bytes msg(16, 0xff);
  EXPECT_EQ(hex_encode(poly1305(key, msg)), "03000000000000000000000000000000");
}

TEST(Poly1305, EmptyMessage) {
  const auto key = key_from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  // Tag of empty message = s (the second key half) since h stays 0.
  EXPECT_EQ(hex_encode(poly1305(key, {})), "0103808afb0db2fd4abff6af4149f51b");
}

TEST(Poly1305, TagChangesWithMessage) {
  const auto key = key_from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  EXPECT_NE(poly1305(key, to_bytes("message A")), poly1305(key, to_bytes("message B")));
}

TEST(Poly1305, NonBlockAlignedLengths) {
  const auto key = key_from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  Poly1305Tag prev{};
  for (std::size_t len : {1u, 15u, 16u, 17u, 31u, 32u, 33u}) {
    const Bytes msg(len, 0x42);
    const auto tag = poly1305(key, msg);
    EXPECT_NE(tag, prev) << "len=" << len;
    prev = tag;
  }
}

}  // namespace
}  // namespace xsearch::crypto
